"""Data layer: stats, labeled datasets, serialization round-trips."""

import numpy as np
import pytest

from repro.data.stats import (
    chi_square_statistic,
    empirical_distribution,
    fidelity_distributions,
    total_variation_distance,
    unique_fraction,
)
from repro.errors import DataError
from repro.rng import make_rng


class TestStats:
    def test_empirical_distribution(self):
        bits = np.array([[0, 0], [1, 1], [1, 1], [0, 1]], dtype=np.uint8)
        dist = empirical_distribution(bits)
        assert np.allclose(dist, [0.25, 0.25, 0, 0.5])

    def test_tvd_bounds(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert total_variation_distance(p, p) == 0.0
        assert total_variation_distance(p, q) == 1.0

    def test_tvd_symmetry(self, rng):
        p = rng.random(8)
        p /= p.sum()
        q = rng.random(8)
        q /= q.sum()
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )

    def test_fidelity_bounds(self):
        p = np.array([0.5, 0.5])
        assert fidelity_distributions(p, p) == pytest.approx(1.0)
        assert fidelity_distributions(np.array([1.0, 0]), np.array([0, 1.0])) == 0.0

    def test_chi_square_small_for_matching(self, rng):
        expected = np.array([0.4, 0.35, 0.25])
        counts = rng.multinomial(10_000, expected)
        stat, dof = chi_square_statistic(counts, expected)
        assert stat < 15  # chi2(dof=2) 99.9th percentile ~ 13.8

    def test_chi_square_large_for_mismatched(self):
        stat, _ = chi_square_statistic(
            np.array([9000, 500, 500]), np.array([1 / 3, 1 / 3, 1 / 3])
        )
        assert stat > 100

    def test_chi_square_pools_sparse_cells(self):
        expected = np.array([0.999, 0.0005, 0.0005])
        stat, dof = chi_square_statistic(np.array([999, 1, 0]), expected)
        assert dof == 1  # 1 big cell + 1 pooled tail - 1

    def test_unique_fraction(self):
        bits = np.array([[0, 1], [0, 1], [1, 0]], dtype=np.uint8)
        assert unique_fraction(bits) == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            empirical_distribution(np.empty((0, 2), dtype=np.uint8))


class TestLabeledDataset:
    def _dataset(self):
        from repro.data.dataset import LabeledShotDataset

        rng = make_rng(0)
        return LabeledShotDataset(
            features=rng.integers(0, 2, size=(100, 6)),
            labels=rng.integers(0, 2, size=100),
            trajectory_ids=np.arange(100) % 10,
        )

    def test_alignment_enforced(self):
        from repro.data.dataset import LabeledShotDataset

        with pytest.raises(DataError):
            LabeledShotDataset(
                features=np.zeros((5, 2), dtype=np.uint8),
                labels=np.zeros(4),
                trajectory_ids=np.zeros(5),
            )

    def test_class_balance(self):
        ds = self._dataset()
        balance = ds.class_balance()
        assert abs(sum(balance.values()) - 1.0) < 1e-12

    def test_split_preserves_total(self):
        ds = self._dataset()
        train, test = ds.split(0.8, make_rng(1))
        assert train.num_samples + test.num_samples == ds.num_samples
        assert train.num_samples == 80

    def test_split_bad_fraction(self):
        with pytest.raises(DataError):
            self._dataset().split(1.5, make_rng(0))


class TestSerialization:
    def test_round_trip(self, tmp_path):
        from repro.data.dataset import LabeledShotDataset
        from repro.data.io import load_dataset, save_dataset
        from repro.trajectory.events import KrausEvent, TrajectoryRecord

        record = TrajectoryRecord(
            trajectory_id=3,
            events=(
                KrausEvent(site_id=1, kraus_index=2, qubits=(0, 1),
                           channel_name="depolarizing2(0.03)", probability=0.002),
            ),
            nominal_probability=0.002,
        )
        ds = LabeledShotDataset(
            features=np.array([[1, 0], [0, 1]], dtype=np.uint8),
            labels=np.array([1, 0]),
            trajectory_ids=np.array([3, 3]),
            records={3: record},
            metadata={"code": "steane"},
        )
        path = tmp_path / "ds.npz"
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert np.array_equal(loaded.features, ds.features)
        assert np.array_equal(loaded.labels, ds.labels)
        assert loaded.metadata == {"code": "steane"}
        rec = loaded.records[3]
        assert rec.events[0].channel_name == "depolarizing2(0.03)"
        assert rec.events[0].qubits == (0, 1)
        assert rec.nominal_probability == pytest.approx(0.002)

    def test_missing_file(self, tmp_path):
        from repro.data.io import load_dataset

        with pytest.raises(DataError):
            load_dataset(tmp_path / "nope.npz")


class TestEvents:
    def test_signature_sorted(self):
        from repro.trajectory.events import KrausEvent, TrajectoryRecord

        rec = TrajectoryRecord(
            trajectory_id=0,
            events=(
                KrausEvent(site_id=5, kraus_index=1),
                KrausEvent(site_id=2, kraus_index=3),
            ),
        )
        assert rec.signature() == ((2, 3), (5, 1))

    def test_choices_map(self):
        from repro.trajectory.events import KrausEvent, TrajectoryRecord

        rec = TrajectoryRecord(
            trajectory_id=0, events=(KrausEvent(site_id=4, kraus_index=2),)
        )
        assert rec.choices == {4: 2}

    def test_labels(self):
        from repro.trajectory.events import KrausEvent, TrajectoryRecord

        rec = TrajectoryRecord(trajectory_id=0, events=())
        assert rec.label() == "ideal"
        rec2 = TrajectoryRecord(
            trajectory_id=0,
            events=(KrausEvent(site_id=1, kraus_index=2, qubits=(0,)),),
        )
        assert "site1:k2" in rec2.label()

    def test_is_error(self):
        from repro.trajectory.events import KrausEvent

        assert KrausEvent(site_id=0, kraus_index=1).is_error()
        assert not KrausEvent(site_id=0, kraus_index=0).is_error()
