"""Chaos suite: deterministic fault injection, seed-exact retry, degradation.

The central claim under test: a run that crashes, hiccups, and OOMs its
way to completion produces the *bitwise identical* shot table of a
fault-free run at the same seed, with every recovery action recorded as
a structured :class:`~repro.faults.retry.RecoveryEvent`.  Seed threading
(per-trajectory Philox streams keyed by ``(seed, trajectory_id)``) is
what makes retry exactly-once-equivalent; these tests are the proof.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.channels import NoiseModel, depolarizing, two_qubit_depolarizing
from repro.circuits import Circuit
from repro.config import Config
from repro.errors import (
    BackendError,
    CapacityError,
    ExecutionError,
    FaultError,
    SamplingError,
    WorkerCrashError,
)
from repro.execution import BackendSpec, run_ptsbe, run_ptsbe_stream
from repro.execution.results import TrajectoryResult
from repro.execution.streaming import OrderedDelivery, PoolJob, stream_pool
from repro.faults import (
    FaultContext,
    FaultPlan,
    FaultSpec,
    RecoveryEvent,
    RetryPolicy,
    maybe_inject,
    parse_fault_plan,
    run_unit_with_retry,
)
from repro.pts import ProbabilisticPTS
from repro.rng import make_rng
from repro.trajectory.events import TrajectoryRecord

SEED = 7

#: Backoff-free policy so chaos runs finish in test time; determinism is
#: unaffected (backoff only changes *pauses*, never results).
FAST_RETRY = RetryPolicy(backoff_base=0.0, jitter=False)


@pytest.fixture(scope="module")
def ghz():
    ideal = Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
    noise = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.05))
    return noise.apply(ideal).freeze()


@pytest.fixture(scope="module")
def brickwork():
    circ = Circuit(4)
    for layer in range(2):
        for q in range(4):
            circ.h(q)
        for q in range(layer % 2, 3, 2):
            circ.cx(q, q + 1)
    circ.measure_all()
    model = (
        NoiseModel()
        .add_all_qubit_gate_noise("cx", two_qubit_depolarizing(0.02))
        .add_all_qubit_gate_noise("h", depolarizing(0.01))
    )
    return model.apply(circ).freeze()


def _pts(nsamples=24, nshots=240):
    return ProbabilisticPTS(nsamples=nsamples, nshots=nshots)


def _run(circuit, strategy, plan=None, fusion="auto", seed=SEED, retry=FAST_RETRY):
    """One run_ptsbe call with the plan threaded through Config."""
    cfg = Config(fault_plan=plan, retry=retry, fusion=fusion)
    if strategy == "parallel":
        return run_ptsbe(
            circuit,
            _pts(),
            seed=seed,
            strategy="parallel",
            backend=BackendSpec.statevector(config=cfg),
            executor_kwargs={"num_workers": 2},
        )
    if strategy == "sharded":
        return run_ptsbe(
            circuit,
            _pts(),
            seed=seed,
            strategy="sharded",
            backend=BackendSpec.batched_statevector(config=cfg),
            executor_kwargs={"devices": 2},
        )
    if strategy == "vectorized":
        return run_ptsbe(
            circuit,
            _pts(),
            seed=seed,
            strategy="vectorized",
            backend=BackendSpec.batched_statevector(config=cfg),
            executor_kwargs={"max_batch": 4},
        )
    if strategy == "tensornet":
        return run_ptsbe(
            circuit,
            _pts(),
            seed=seed,
            strategy="tensornet",
            executor_kwargs={"config": cfg},
        )
    raise AssertionError(strategy)


def _bits(result):
    return result.shot_table().bits


def _kinds(result):
    return [event.kind for event in result.recovery]


# --------------------------------------------------------------------- #
# FaultPlan: matching, determinism, parsing
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_rule_matches_glob_and_times(self):
        spec = FaultSpec("transient-backend", "parallel/slice:*", times=2)
        assert spec.matches("parallel/slice:3", 0)
        assert spec.matches("parallel/slice:3", 1)
        assert not spec.matches("parallel/slice:3", 2)
        assert not spec.matches("sharded/shard:0", 0)

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            rules=(
                FaultSpec("worker-crash", "parallel/slice:1"),
                FaultSpec("transient-backend", "parallel/slice:*"),
            )
        )
        assert plan.fault_at("parallel/slice:1", 0, seed=1) == "worker-crash"
        assert plan.fault_at("parallel/slice:0", 0, seed=1) == "transient-backend"
        assert plan.fault_at("vectorized/stack:0:4", 0, seed=1) is None

    def test_random_mode_is_seed_deterministic(self):
        plan = FaultPlan(rate=0.5, kinds=("transient-backend", "capacity"))
        sites = [f"parallel/slice:{k}" for k in range(32)]
        first = [plan.fault_at(site, 0, seed=11) for site in sites]
        second = [plan.fault_at(site, 0, seed=11) for site in sites]
        assert first == second
        assert any(kind is not None for kind in first)
        assert any(kind is None for kind in first)
        other = [plan.fault_at(site, 0, seed=12) for site in sites]
        assert other != first  # a different seed draws a different pattern

    def test_random_mode_only_hits_attempt_zero(self):
        plan = FaultPlan(rate=1.0)
        assert plan.fault_at("parallel/slice:0", 0, seed=3) is not None
        assert plan.fault_at("parallel/slice:0", 1, seed=3) is None

    def test_maybe_inject_exception_classes(self):
        for kind, exc_type in [
            ("worker-crash", WorkerCrashError),
            ("transient-backend", BackendError),
            ("capacity", CapacityError),
        ]:
            plan = FaultPlan(rules=(FaultSpec(kind, "unit"),))
            with pytest.raises(exc_type, match="injected"):
                maybe_inject(plan, "unit", 0, seed=0)

    def test_slow_worker_stalls_then_succeeds(self):
        plan = FaultPlan(
            rules=(FaultSpec("slow-worker", "unit"),), slow_seconds=0.01
        )
        t0 = time.perf_counter()
        maybe_inject(plan, "unit", 0, seed=0)  # must not raise
        assert time.perf_counter() - t0 >= 0.01

    def test_disabled_plan_is_inert(self):
        maybe_inject(None, "anything", 0, seed=0)  # no-op, no raise

    def test_validation(self):
        with pytest.raises(ExecutionError, match="unknown fault kind"):
            FaultSpec("melted", "unit")
        with pytest.raises(ExecutionError, match="times"):
            FaultSpec("capacity", "unit", times=0)
        with pytest.raises(ExecutionError, match="rate"):
            FaultPlan(rate=1.5)
        with pytest.raises(ExecutionError, match="unknown fault kind"):
            FaultPlan(kinds=("bogus",))

    def test_parse_round_trip(self):
        plan = parse_fault_plan(
            "worker-crash@parallel/slice:1; transient-backend@sharded/*#2"
        )
        assert plan.rules == (
            FaultSpec("worker-crash", "parallel/slice:1"),
            FaultSpec("transient-backend", "sharded/*", times=2),
        )
        assert plan.rate == 0.0

    def test_parse_random_mode(self):
        plan = parse_fault_plan("random:0.25:transient-backend,slow-worker")
        assert plan.rate == 0.25
        assert plan.kinds == ("transient-backend", "slow-worker")

    def test_parse_empty_disables(self):
        assert parse_fault_plan("") is None
        assert parse_fault_plan("   ") is None

    @pytest.mark.parametrize(
        "text",
        [
            "worker-crash",  # no @SITE
            "melted@unit",  # unknown kind
            "capacity@unit#zero",  # non-integer times
            "random:lots",  # non-float rate
            "random:0.5:bogus",  # unknown kind in pool
            "random:2.0",  # out-of-range rate
        ],
    )
    def test_parse_malformed_raises(self, text):
        with pytest.raises(ExecutionError):
            parse_fault_plan(text)

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan(rules=(FaultSpec("capacity", "vectorized/stack:*"),))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_env_var_threads_into_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "transient-backend@parallel/slice:0")
        cfg = Config()
        assert cfg.fault_plan == FaultPlan(
            rules=(FaultSpec("transient-backend", "parallel/slice:0"),)
        )
        monkeypatch.setenv("REPRO_FAULTS", "")
        assert Config().fault_plan is None

    def test_env_var_malformed_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "not-a-directive")
        with pytest.raises(ExecutionError, match="REPRO_FAULTS"):
            Config()


# --------------------------------------------------------------------- #
# RetryPolicy and the unit driver
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(BackendError("hiccup"))
        assert policy.is_retryable(WorkerCrashError("died"))
        # CapacityError subclasses BackendError but repeating the same
        # allocation fails the same way -> structurally excluded.
        assert not policy.is_retryable(CapacityError("oom"))
        assert not policy.is_retryable(ValueError("not ours"))
        assert not policy.is_retryable(SamplingError("typed but not transient"))

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_max=0.05, jitter=True)
        a = policy.backoff_seconds(3, "unit", 1)
        assert a == policy.backoff_seconds(3, "unit", 1)
        assert policy.backoff_seconds(4, "unit", 1) != a  # keyed off seed
        assert policy.backoff_seconds(3, "other", 1) != a  # ... and unit
        for attempt in range(1, 10):
            delay = policy.backoff_seconds(3, "unit", attempt)
            assert 0.0 < delay <= 0.05 * 1.5

    def test_backoff_without_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_max=1.0, jitter=False)
        assert policy.backoff_seconds(0, "u", 1) == 0.01
        assert policy.backoff_seconds(0, "u", 2) == 0.02
        assert policy.backoff_seconds(0, "u", 3) == 0.04

    def test_validation(self):
        with pytest.raises(ExecutionError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExecutionError, match="backoff"):
            RetryPolicy(backoff_base=-1.0)

    def test_run_unit_recovers_and_records(self):
        ctx = FaultContext(plan=None, policy=FAST_RETRY, seed=0, strategy="test")
        events, calls = [], []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise BackendError("hiccup")
            return "done"

        assert run_unit_with_retry(flaky, unit="u", ctx=ctx, recovery=events) == "done"
        assert calls == [0, 1, 2]
        assert [(e.kind, e.attempt) for e in events] == [("retry", 1), ("retry", 2)]
        assert all(e.unit == "u" and e.strategy == "test" for e in events)

    def test_run_unit_exhaustion_raises_fault_error(self):
        ctx = FaultContext(
            plan=None,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
            seed=0,
            strategy="test",
        )
        events = []

        def doomed(attempt):
            raise BackendError("permanent")

        with pytest.raises(FaultError, match="failed after 2 attempt") as info:
            run_unit_with_retry(doomed, unit="u", ctx=ctx, recovery=events)
        assert info.value.unit == "u"
        assert info.value.attempts == 2
        assert isinstance(info.value.__cause__, BackendError)
        assert len(events) == 1  # one retry happened before exhaustion

    def test_capacity_error_passes_straight_through(self):
        ctx = FaultContext(plan=None, policy=FAST_RETRY, seed=0)
        events = []

        def oom(attempt):
            raise CapacityError("stack too wide")

        with pytest.raises(CapacityError):
            run_unit_with_retry(oom, unit="u", ctx=ctx, recovery=events)
        assert events == []  # escalation, not recovery

    def test_non_retryable_propagates_unchanged(self):
        ctx = FaultContext(plan=None, policy=FAST_RETRY, seed=0)

        def broken(attempt):
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            run_unit_with_retry(broken, unit="u", ctx=ctx, recovery=[])


class TestOrderedDeliveryReissue:
    def _trajectory(self, tid):
        record = TrajectoryRecord(
            trajectory_id=tid, events=(), nominal_probability=1.0
        )
        return TrajectoryResult(record=record, bits=np.zeros((1, 1), dtype=np.uint8))

    def test_reissue_drops_duplicates_silently(self):
        delivery = OrderedDelivery(3)
        delivery.add([(0, self._trajectory(0)), (1, self._trajectory(1))])
        again = delivery.add(
            [(1, self._trajectory(1)), (2, self._trajectory(2))], reissue=True
        )
        assert [t.record.trajectory_id for t in again] == [2]

    def test_plain_duplicate_still_raises(self):
        delivery = OrderedDelivery(2)
        delivery.add([(0, self._trajectory(0))])
        with pytest.raises(ExecutionError, match="duplicate"):
            delivery.add([(0, self._trajectory(0))])


# --------------------------------------------------------------------- #
# Bitwise recovery across strategies
# --------------------------------------------------------------------- #
class TestBitwiseRecovery:
    """Faulty runs must reproduce fault-free shot tables exactly."""

    @pytest.mark.parametrize("fusion", ["auto", "off"])
    def test_parallel_crash_and_transient(self, ghz, fusion):
        plan = FaultPlan(
            rules=(
                FaultSpec("worker-crash", "parallel/slice:1"),
                FaultSpec("transient-backend", "parallel/slice:0"),
            )
        )
        clean = _run(ghz, "parallel", fusion=fusion)
        faulty = _run(ghz, "parallel", plan=plan, fusion=fusion)
        assert sorted(_kinds(faulty)) == ["retry", "retry"]
        assert {e.unit for e in faulty.recovery} == {
            "parallel/slice:0",
            "parallel/slice:1",
        }
        assert np.array_equal(_bits(clean), _bits(faulty))

    @pytest.mark.parametrize("fusion", ["auto", "off"])
    def test_vectorized_transient_retry(self, brickwork, fusion):
        plan = FaultPlan(rules=(FaultSpec("transient-backend", "vectorized/stack:0:*"),))
        clean = _run(brickwork, "vectorized", fusion=fusion)
        faulty = _run(brickwork, "vectorized", plan=plan, fusion=fusion)
        assert _kinds(faulty) == ["retry"]
        assert np.array_equal(_bits(clean), _bits(faulty))

    def test_vectorized_capacity_halving_is_bitwise(self, brickwork):
        # An exact-site rule fires once on the full first chunk; the two
        # halves have different unit names, so the ladder recovers.
        # Dense stacking is chunking-invariant, so halving is bitwise.
        clean = _run(brickwork, "vectorized")
        probe = _run(
            brickwork,
            "vectorized",
            plan=FaultPlan(rules=(FaultSpec("transient-backend", "vectorized/stack:*"),)),
        )
        first_chunk = probe.recovery[0].unit
        plan = FaultPlan(rules=(FaultSpec("capacity", first_chunk),))
        faulty = _run(brickwork, "vectorized", plan=plan)
        assert _kinds(faulty) == ["batch-halved"]
        assert faulty.recovery[0].unit == first_chunk
        assert "split into" in faulty.recovery[0].detail
        assert np.array_equal(_bits(clean), _bits(faulty))

    def test_sharded_crash_rebins_bitwise(self, ghz):
        plan = FaultPlan(
            rules=(
                FaultSpec("worker-crash", "sharded/shard:0"),
                FaultSpec("transient-backend", "sharded/shard:1"),
            )
        )
        clean = _run(ghz, "sharded")
        faulty = _run(ghz, "sharded", plan=plan)
        assert sorted(_kinds(faulty)) == ["rebin", "retry"]
        rebin = next(e for e in faulty.recovery if e.kind == "rebin")
        assert rebin.unit == "sharded/shard:0"
        assert "surviving device" in rebin.detail
        assert np.array_equal(_bits(clean), _bits(faulty))

    def test_sharded_inner_capacity_halving_bitwise(self, ghz):
        # Discover the inner stacked-chunk unit, then OOM exactly it: the
        # fault fires inside the shard worker subprocess and the halving
        # happens there too, proving plans travel into workers.
        probe_plan = FaultPlan(
            rules=(FaultSpec("transient-backend", "vectorized/stack:*"),)
        )
        probe = _run(ghz, "sharded", plan=probe_plan)
        inner = probe.recovery[0].unit.split("/", 2)[-1]  # vectorized/stack:a:b
        clean = _run(ghz, "sharded")
        faulty = _run(
            ghz, "sharded", plan=FaultPlan(rules=(FaultSpec("capacity", inner),))
        )
        halved = [e for e in faulty.recovery if e.kind == "batch-halved"]
        assert halved and all("split into" in e.detail for e in halved)
        assert all(e.unit.startswith("sharded/shard:") for e in halved)
        assert np.array_equal(_bits(clean), _bits(faulty))

    @pytest.mark.parametrize("kind", ["transient-backend", "worker-crash"])
    def test_tensornet_retry_is_bitwise(self, ghz, kind):
        plan = FaultPlan(rules=(FaultSpec(kind, "tensornet/stack:*"),))
        clean = _run(ghz, "tensornet")
        faulty = _run(ghz, "tensornet", plan=plan)
        assert "retry" in _kinds(faulty)
        assert np.array_equal(_bits(clean), _bits(faulty))

    @pytest.mark.parametrize("strategy", ["parallel", "sharded", "tensornet"])
    def test_acceptance_plan_recovers_bitwise(self, ghz, strategy):
        """The issue's acceptance plan: >=1 crash, >=1 transient, >=1
        stacked-prep capacity fault in one plan, completing on every
        pooled/stacked strategy with fault-free-identical tables."""
        plan = FaultPlan(
            rules=(
                FaultSpec("worker-crash", "parallel/slice:1"),
                FaultSpec("worker-crash", "sharded/shard:0"),
                FaultSpec("worker-crash", "tensornet/stack:*"),
                FaultSpec("transient-backend", "parallel/slice:0"),
                FaultSpec("transient-backend", "sharded/shard:1"),
                FaultSpec("capacity", "vectorized/stack:0:3"),
            )
        )
        clean = _run(ghz, strategy)
        faulty = _run(ghz, strategy, plan=plan)
        assert faulty.recovery, f"{strategy} recorded no recovery events"
        assert np.array_equal(_bits(clean), _bits(faulty))

    def test_random_chaos_recovers_bitwise(self, ghz):
        # Random mode only ever hits attempt 0, so the default budget
        # always recovers; the same seed reproduces the same fault set.
        plan = FaultPlan(rate=0.8)
        clean = _run(ghz, "parallel")
        faulty = _run(ghz, "parallel", plan=plan)
        again = _run(ghz, "parallel", plan=plan)
        assert _kinds(faulty)  # 4 slices at rate 0.8: some fault fired
        # Pool workers append events in completion order, which thread
        # scheduling may permute — the deterministic contract is the
        # fault *set* (and the bits), not the diagnostic ordering.
        assert sorted((e.unit, e.kind, e.attempt) for e in faulty.recovery) == sorted(
            (e.unit, e.kind, e.attempt) for e in again.recovery
        )
        assert np.array_equal(_bits(clean), _bits(faulty))

    def test_disabled_faults_record_nothing(self, ghz):
        result = _run(ghz, "vectorized")
        assert result.recovery == []

    def test_stream_and_result_share_recovery(self, ghz):
        cfg = Config(
            fault_plan=FaultPlan(
                rules=(FaultSpec("transient-backend", "parallel/slice:*"),)
            ),
            retry=FAST_RETRY,
        )
        stream = run_ptsbe_stream(
            ghz,
            _pts(),
            seed=SEED,
            strategy="parallel",
            backend=BackendSpec.statevector(config=cfg),
            executor_kwargs={"num_workers": 2},
        )
        result = stream.finalize()
        assert result.recovery == stream.recovery
        assert all(isinstance(e, RecoveryEvent) for e in result.recovery)
        assert len(result.recovery) == 2  # one retry per worker slice


# --------------------------------------------------------------------- #
# Degradation ladders: escalation when recovery cannot help
# --------------------------------------------------------------------- #
class TestDegradation:
    def test_vectorized_capacity_glob_hits_the_floor(self, brickwork):
        # A glob matching every descendant chunk keeps firing as the
        # ladder halves; at the single-row floor it must escalate.
        plan = FaultPlan(rules=(FaultSpec("capacity", "vectorized/stack:*"),))
        with pytest.raises(FaultError, match="single-row floor") as info:
            _run(brickwork, "vectorized", plan=plan)
        assert info.value.unit.startswith("vectorized/stack:")

    def test_retry_budget_exhaustion(self, ghz):
        plan = FaultPlan(
            rules=(FaultSpec("transient-backend", "parallel/slice:0", times=99),)
        )
        with pytest.raises(FaultError, match="parallel/slice:0") as info:
            _run(
                ghz,
                "parallel",
                plan=plan,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            )
        assert info.value.attempts == 2

    def test_sharded_all_devices_dead(self, ghz):
        # The glob also matches rebinned units, so devices die one after
        # another until no survivor remains.
        plan = FaultPlan(rules=(FaultSpec("worker-crash", "sharded/shard:*", times=99),))
        with pytest.raises(FaultError, match="no devices survive"):
            _run(ghz, "sharded", plan=plan)

    def test_tensornet_capacity_halving_is_structural(self, ghz):
        # Tensor-network stacking is *not* chunking-invariant (the batched
        # truncated SVD keeps a common rank per chunk), so the capacity
        # ladder promises distribution preservation, not bitwise identity:
        # assert structure, not bits.
        probe = _run(
            ghz,
            "tensornet",
            plan=FaultPlan(rules=(FaultSpec("transient-backend", "tensornet/stack:*"),)),
        )
        full_chunk = probe.recovery[0].unit
        clean = _run(ghz, "tensornet")
        faulty = _run(
            ghz, "tensornet", plan=FaultPlan(rules=(FaultSpec("capacity", full_chunk),))
        )
        assert "batch-halved" in _kinds(faulty)
        assert faulty.total_shots == clean.total_shots
        assert [t.record.trajectory_id for t in faulty.trajectories] == [
            t.record.trajectory_id for t in clean.trajectories
        ]

    def test_fault_error_is_execution_error(self):
        assert issubclass(FaultError, ExecutionError)
        assert issubclass(WorkerCrashError, ExecutionError)


# --------------------------------------------------------------------- #
# Pool substrate failures (real crashes, not injected exceptions)
# --------------------------------------------------------------------- #
def _make_trajectory(tid):
    record = TrajectoryRecord(trajectory_id=tid, events=(), nominal_probability=1.0)
    return TrajectoryResult(record=record, bits=np.zeros((2, 1), dtype=np.uint8))


def _crashy_pool_worker(payload):
    position, attempt = payload
    if position == 1 and attempt == 0:
        os._exit(13)  # hard death: the pool itself breaks
    return [(position, _make_trajectory(position))]


def _cancelling_pool_worker(payload):
    from concurrent.futures import CancelledError

    raise CancelledError()


class TestPoolSubstrate:
    def _jobs(self, n):
        return [
            PoolJob(
                unit=f"test/unit:{k}",
                payload_for=lambda attempt, k=k: (k, attempt),
                tag=lambda result: result,
            )
            for k in range(n)
        ]

    def test_broken_pool_recreated_and_survivors_resubmitted(self):
        ctx = FaultContext(plan=None, policy=FAST_RETRY, seed=0, strategy="test")
        events = []
        delivery = OrderedDelivery(3)
        delivered = []
        for ready in stream_pool(
            self._jobs(3),
            _crashy_pool_worker,
            delivery,
            max_workers=2,
            ctx=ctx,
            recovery=events,
        ):
            delivered.extend(ready)
        assert [t.record.trajectory_id for t in delivered] == [0, 1, 2]
        assert any("BrokenProcessPool" in e.error for e in events)
        assert multiprocessing.active_children() == []

    def test_cancelled_error_translated_with_unit_context(self):
        ctx = FaultContext(plan=None, policy=FAST_RETRY, seed=0, strategy="test")
        delivery = OrderedDelivery(1)
        with pytest.raises(ExecutionError, match="test/unit:0.*cancelled"):
            for _ in stream_pool(
                self._jobs(1),
                _cancelling_pool_worker,
                delivery,
                max_workers=1,
                ctx=ctx,
                recovery=[],
            ):
                pass


# --------------------------------------------------------------------- #
# Mid-stream abandonment under faults
# --------------------------------------------------------------------- #
class TestMidStreamClose:
    def test_close_during_in_flight_retries(self, ghz):
        # Every slice faults on its first attempt; close after the first
        # chunk lands while other slices are mid-retry.  Nothing may leak.
        cfg = Config(
            fault_plan=FaultPlan(
                rules=(FaultSpec("transient-backend", "parallel/slice:*"),),
            ),
            retry=RetryPolicy(backoff_base=0.05, backoff_max=0.05, jitter=False),
        )
        stream = run_ptsbe_stream(
            ghz,
            _pts(),
            seed=SEED,
            strategy="parallel",
            backend=BackendSpec.statevector(config=cfg),
            executor_kwargs={"num_workers": 2},
        )
        next(stream)
        stream.close()
        stream.close()  # idempotent under fault recovery too
        assert stream.closed
        deadline = time.time() + 10
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    def test_finalize_after_partial_consumption_with_faults(self, ghz):
        plan = FaultPlan(rules=(FaultSpec("worker-crash", "sharded/shard:0"),))
        cfg = Config(fault_plan=plan, retry=FAST_RETRY)
        stream = run_ptsbe_stream(
            ghz,
            _pts(),
            seed=SEED,
            strategy="sharded",
            backend=BackendSpec.batched_statevector(config=cfg),
            executor_kwargs={"devices": 2},
        )
        next(stream)
        result = stream.finalize()
        clean = _run(ghz, "sharded")
        assert np.array_equal(_bits(clean), result.shot_table().bits)
        assert any(e.kind == "rebin" for e in result.recovery)
