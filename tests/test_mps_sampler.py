"""MPS sampling: cached vs. naive equivalence and distribution exactness.

This is the Fig. 5 mechanism test: both sampling modes must produce the
same distribution (the exact one), while the cached mode amortizes the
environment chain across the batch.
"""

import numpy as np
import pytest

from repro.backends.mps import MPSBackend
from repro.backends.mps_sampler import compute_right_environments, sample_cached
from repro.backends.statevector import StatevectorBackend
from repro.circuits import library
from repro.data.stats import empirical_distribution, total_variation_distance
from repro.rng import make_rng


def _prepared_mps(num_qubits=5, depth=3, seed=0):
    circ = library.random_brickwork(num_qubits, depth, rng=make_rng(seed))
    mps = MPSBackend(num_qubits, max_bond=64)
    sv = StatevectorBackend(num_qubits)
    for op in circ.coherent_ops:
        mps.apply_gate(op.gate, op.qubits)
        sv.apply_gate(op.gate, op.qubits)
    return mps, sv


class TestEnvironments:
    def test_full_contraction_equals_norm(self):
        mps, _ = _prepared_mps()
        envs = compute_right_environments(mps.tensors)
        assert envs[0][0, 0].real == pytest.approx(mps.norm_squared(), abs=1e-9)

    def test_environment_shapes(self):
        mps, _ = _prepared_mps()
        envs = compute_right_environments(mps.tensors)
        for k, a in enumerate(mps.tensors):
            assert envs[k].shape == (a.shape[0], a.shape[0])
        assert envs[len(mps.tensors)].shape == (1, 1)


class TestDistributions:
    def test_cached_matches_exact_distribution(self):
        mps, sv = _prepared_mps()
        bits = mps.sample(40000, range(5), make_rng(7), mode="cached")
        emp = empirical_distribution(bits)
        assert total_variation_distance(emp, sv.probabilities()) < 0.03

    def test_naive_matches_exact_distribution(self):
        mps, sv = _prepared_mps()
        bits = mps.sample(2000, range(5), make_rng(8), mode="naive")
        emp = empirical_distribution(bits)
        assert total_variation_distance(emp, sv.probabilities()) < 0.08

    def test_cached_and_naive_agree(self):
        mps, _ = _prepared_mps(seed=3)
        cached = mps.sample(8000, range(5), make_rng(9), mode="cached")
        naive = mps.sample(2000, range(5), make_rng(10), mode="naive")
        tvd = total_variation_distance(
            empirical_distribution(cached), empirical_distribution(naive)
        )
        assert tvd < 0.1

    def test_deterministic_state(self):
        mps = MPSBackend(4)
        from repro.circuits.gates import X

        mps.apply_gate(X, [2])
        bits = mps.sample(100, range(4), make_rng(11))
        assert np.all(bits == [0, 0, 1, 0])

    def test_qubit_subset_and_order(self):
        mps = MPSBackend(3)
        from repro.circuits.gates import X

        mps.apply_gate(X, [0])
        bits = mps.sample(10, [2, 0], make_rng(12))
        assert np.all(bits[:, 0] == 0) and np.all(bits[:, 1] == 1)

    def test_unknown_mode_rejected(self):
        mps = MPSBackend(2)
        with pytest.raises(Exception):
            mps.sample(1, [0], make_rng(0), mode="wat")

    def test_ghz_correlations_via_cached_sampler(self):
        circ = library.ghz(8)
        mps = MPSBackend(8, max_bond=4)
        for op in circ.coherent_ops:
            mps.apply_gate(op.gate, op.qubits)
        bits = mps.sample(500, range(8), make_rng(13))
        # Every shot is all-zeros or all-ones.
        assert np.all((bits.sum(axis=1) == 0) | (bits.sum(axis=1) == 8))


class TestPerformanceCharacter:
    def test_cached_amortizes_contraction(self):
        """Cached batch sampling must beat naive per-shot re-contraction.

        This is the structural claim behind Fig. 5's 16x; at laptop scale
        with a modest chi the gap is already pronounced.
        """
        import time

        circ = library.random_brickwork(12, 4, rng=make_rng(14))
        mps = MPSBackend(12, max_bond=32)
        for op in circ.coherent_ops:
            mps.apply_gate(op.gate, op.qubits)
        shots = 300
        t0 = time.perf_counter()
        mps.sample(shots, range(12), make_rng(1), mode="cached")
        cached_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        mps.sample(shots, range(12), make_rng(2), mode="naive")
        naive_s = time.perf_counter() - t0
        assert naive_s > 2.0 * cached_s
