"""Tests for :mod:`repro.linalg` (kron embedding, unitarity, SVD)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GateError
from repro.linalg import (
    closest_unitary,
    embed_operator,
    is_hermitian,
    is_unitary,
    kron_all,
    permute_operator_qubits,
    random_statevector,
    random_unitary,
    schmidt_decomposition,
    truncated_svd,
)

X = np.array([[0, 1], [1, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
CX = np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex)


class TestKron:
    def test_kron_all_ordering(self):
        # Leftmost factor acts on qubit 0 (most significant bit).
        full = kron_all([X, np.eye(2)])
        state = np.zeros(4)
        state[0] = 1.0  # |00>
        out = full @ state
        assert np.argmax(np.abs(out)) == 0b10  # |10>

    def test_kron_all_empty(self):
        assert np.array_equal(kron_all([]), np.eye(1))

    def test_embed_single_qubit(self):
        full = embed_operator(X, [1], 3)
        state = np.zeros(8)
        state[0] = 1.0
        assert np.argmax(np.abs(full @ state)) == 0b010

    def test_embed_matches_kron(self):
        rng = np.random.default_rng(0)
        u = random_unitary(2, rng)
        assert np.allclose(embed_operator(u, [0], 2), np.kron(u, np.eye(2)))
        assert np.allclose(embed_operator(u, [1], 2), np.kron(np.eye(2), u))

    def test_embed_two_qubit_nonascending(self):
        # CX with control 2, target 0 in a 3-qubit register.
        full = embed_operator(CX, [2, 0], 3)
        state = np.zeros(8)
        state[0b001] = 1.0  # qubit2 = 1 -> should flip qubit 0
        out = full @ state
        assert np.argmax(np.abs(out)) == 0b101

    def test_embed_rejects_duplicates(self):
        with pytest.raises(GateError):
            embed_operator(CX, [1, 1], 3)

    def test_embed_rejects_out_of_range(self):
        with pytest.raises(GateError):
            embed_operator(X, [3], 3)

    def test_permute_swap_on_cx_gives_xc(self):
        swapped = permute_operator_qubits(CX, [1, 0])
        # Control on qubit 1, target on qubit 0: |01> -> |11>
        state = np.zeros(4)
        state[0b01] = 1.0
        assert np.argmax(np.abs(swapped @ state)) == 0b11

    def test_permute_identity(self):
        assert np.allclose(permute_operator_qubits(CX, [0, 1]), CX)

    def test_permute_rejects_bad_perm(self):
        with pytest.raises(GateError):
            permute_operator_qubits(CX, [0, 0])

    @given(st.integers(min_value=0, max_value=2), st.integers(min_value=0, max_value=2))
    @settings(max_examples=20, deadline=None)
    def test_embed_preserves_unitarity(self, t0, t1):
        if t0 == t1:
            return
        u = random_unitary(4, np.random.default_rng(1))
        full = embed_operator(u, [t0, t1], 3)
        assert is_unitary(full)


class TestUnitary:
    def test_is_unitary_accepts(self):
        assert is_unitary(random_unitary(8, np.random.default_rng(2)))

    def test_is_unitary_rejects_nonsquare(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_is_unitary_rejects_scaled(self):
        assert not is_unitary(2.0 * np.eye(4))

    def test_is_hermitian(self):
        assert is_hermitian(X)
        assert not is_hermitian(np.array([[0, 1], [0, 0]]))

    def test_closest_unitary_projects(self):
        rng = np.random.default_rng(3)
        noisy = random_unitary(4, rng) + 1e-3 * rng.normal(size=(4, 4))
        assert is_unitary(closest_unitary(noisy), atol=1e-9)

    def test_random_statevector_normalized(self):
        psi = random_statevector(4, np.random.default_rng(4))
        assert psi.shape == (16,)
        assert abs(np.linalg.norm(psi) - 1) < 1e-12

    def test_haar_mean_is_zero(self):
        rng = np.random.default_rng(5)
        mean = np.mean([random_unitary(2, rng)[0, 0] for _ in range(500)])
        assert abs(mean) < 0.1


class TestTruncatedSVD:
    def test_exact_reconstruction_without_truncation(self):
        rng = np.random.default_rng(6)
        m = rng.normal(size=(8, 5))
        u, s, vh, info = truncated_svd(m)
        assert np.allclose(u * s @ vh, m)
        assert info.discarded_weight == 0.0

    def test_rank_cap(self):
        rng = np.random.default_rng(7)
        m = rng.normal(size=(8, 8))
        u, s, vh, info = truncated_svd(m, max_rank=3)
        assert info.kept == 3
        assert u.shape == (8, 3) and vh.shape == (3, 8)

    def test_discarded_weight_matches_frobenius(self):
        rng = np.random.default_rng(8)
        m = rng.normal(size=(6, 6))
        u, s, vh, info = truncated_svd(m, max_rank=2)
        approx = u * s @ vh
        frob_err = np.linalg.norm(m - approx) ** 2 / np.linalg.norm(m) ** 2
        assert abs(info.discarded_weight - frob_err) < 1e-10

    def test_cutoff_drops_small_values(self):
        m = np.diag([1.0, 0.5, 1e-8])
        _, s, _, info = truncated_svd(m, cutoff=1e-6)
        assert info.kept == 2

    def test_always_keeps_one(self):
        m = np.diag([1.0, 1e-20])
        _, s, _, info = truncated_svd(m, max_rank=0)
        assert info.kept == 1

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_truncation_error_monotone_in_rank(self, rank):
        rng = np.random.default_rng(9)
        m = rng.normal(size=(8, 8))
        _, _, _, lo = truncated_svd(m, max_rank=rank)
        _, _, _, hi = truncated_svd(m, max_rank=rank + 1)
        assert hi.discarded_weight <= lo.discarded_weight + 1e-12


class TestSchmidt:
    def test_product_state_has_rank_one(self):
        psi = np.kron([1, 0], [0.6, 0.8])
        coeffs, _, _ = schmidt_decomposition(psi, 1, 2)
        assert abs(coeffs[0] - 1.0) < 1e-12
        assert abs(coeffs[1]) < 1e-12

    def test_bell_state_is_maximally_entangled(self):
        bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
        coeffs, _, _ = schmidt_decomposition(bell, 1, 2)
        assert np.allclose(coeffs, [1 / np.sqrt(2)] * 2)

    def test_reconstruction(self):
        psi = random_statevector(4, np.random.default_rng(10))
        coeffs, left, right = schmidt_decomposition(psi, 2, 4)
        rebuilt = sum(
            coeffs[k] * np.kron(left[:, k], right[:, k]) for k in range(len(coeffs))
        )
        assert np.allclose(rebuilt, psi)
