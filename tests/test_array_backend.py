"""The pluggable array-module layer: resolution, fallback, kernel parity."""

import numpy as np
import pytest

from repro.backends.batched_statevector import BatchedStatevectorBackend
from repro.backends.statevector import StatevectorBackend
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import BackendError
from repro.linalg.apply import apply_matrix_stack
from repro.linalg.backend import (
    NUMPY_BACKEND,
    ArrayBackend,
    as_host,
    cupy_available,
    get_array_backend,
)


class TestResolution:
    def test_numpy_is_always_available(self):
        ab = get_array_backend("numpy")
        assert ab is NUMPY_BACKEND
        assert ab.name == "numpy"
        assert ab.xp is np
        assert not ab.is_device

    def test_auto_degrades_to_numpy_without_cupy(self):
        ab = get_array_backend("auto")
        if cupy_available():
            assert ab.name == "cupy"
        else:
            assert ab is NUMPY_BACKEND

    @pytest.mark.skipif(cupy_available(), reason="cupy installed on this machine")
    def test_explicit_cupy_fails_loudly_when_absent(self):
        with pytest.raises(BackendError, match="cupy"):
            get_array_backend("cupy")

    def test_unknown_module_rejected(self):
        with pytest.raises(BackendError, match="unknown array_module"):
            get_array_backend("torch")

    def test_backend_instance_passes_through(self):
        assert get_array_backend(NUMPY_BACKEND) is NUMPY_BACKEND

    def test_none_reads_default_config(self):
        assert get_array_backend(None).name == get_array_backend(
            DEFAULT_CONFIG.array_module
        ).name

    def test_config_field_default(self):
        assert Config().array_module == "auto"
        assert Config(array_module="numpy").array_module == "numpy"


class TestHostTransfer:
    def test_asarray_and_to_host_roundtrip(self):
        arr = np.arange(8, dtype=np.complex128)
        on_module = NUMPY_BACKEND.asarray(arr)
        back = NUMPY_BACKEND.to_host(on_module)
        np.testing.assert_array_equal(back, arr)
        assert isinstance(back, np.ndarray)

    def test_asarray_casts_dtype(self):
        arr = NUMPY_BACKEND.asarray([1, 2], dtype=np.complex64)
        assert arr.dtype == np.complex64

    def test_as_host_handles_plain_arrays(self):
        np.testing.assert_array_equal(as_host([1.0, 2.0]), np.array([1.0, 2.0]))
        arr = np.eye(2)
        assert as_host(arr) is arr or np.array_equal(as_host(arr), arr)


class TestPinnedStaging:
    """to_host_pinned: the shot-index transfer helper (no-op under NumPy)."""

    def test_numpy_path_is_identity_with_to_host(self):
        arr = np.arange(17, dtype=np.int64)
        pinned = NUMPY_BACKEND.to_host_pinned(arr)
        plain = NUMPY_BACKEND.to_host(arr)
        assert isinstance(pinned, np.ndarray)
        np.testing.assert_array_equal(pinned, plain)
        # Identity semantics: the NumPy path must not copy.
        assert pinned is arr or pinned.base is arr

    def test_empty_array(self):
        out = NUMPY_BACKEND.to_host_pinned(np.empty((0,), dtype=np.int64))
        assert out.shape == (0,) and out.dtype == np.int64

    def test_preserves_shape_and_dtype(self):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        out = NUMPY_BACKEND.to_host_pinned(arr)
        assert out.shape == (3, 4) and out.dtype == np.float32

    @pytest.mark.skipif(not cupy_available(), reason="needs CuPy")
    def test_cupy_path_values_match_to_host(self):
        ab = get_array_backend("cupy")
        device = ab.asarray(np.arange(1000, dtype=np.int64))
        pinned = ab.to_host_pinned(device)
        np.testing.assert_array_equal(pinned, ab.to_host(device))
        assert isinstance(pinned, np.ndarray)


class TestKernelParity:
    """Explicit xp= must be a pure pass-through on the NumPy path."""

    def test_apply_matrix_stack_explicit_xp_matches_default(self):
        rng = np.random.default_rng(5)
        stack = rng.normal(size=(3, 8)) + 1j * rng.normal(size=(3, 8))
        stack = np.ascontiguousarray(stack.astype(np.complex128))
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        a = apply_matrix_stack(stack.copy(), h, [1], 3, np.dtype(np.complex128))
        b = apply_matrix_stack(
            stack.copy(), h, [1], 3, np.dtype(np.complex128), xp=np
        )
        np.testing.assert_array_equal(a, b)

    def test_statevector_backend_explicit_numpy_bitwise(self, noisy_ghz3):
        default = StatevectorBackend(3)
        explicit = StatevectorBackend(3, config=Config(array_module="numpy"))
        w0 = default.run_fixed(noisy_ghz3, {0: 1})
        w1 = explicit.run_fixed(noisy_ghz3, {0: 1})
        assert w0 == w1
        np.testing.assert_array_equal(default.statevector, explicit.statevector)
        assert explicit.array_backend.name == "numpy"

    def test_batched_backend_explicit_numpy_bitwise(self, noisy_ghz3):
        default = BatchedStatevectorBackend(3)
        explicit = BatchedStatevectorBackend(3, config=Config(array_module="numpy"))
        choices = [{}, {0: 1}]
        w0, a0 = default.run_fixed_stack(noisy_ghz3, choices)
        w1, a1 = explicit.run_fixed_stack(noisy_ghz3, choices)
        np.testing.assert_array_equal(w0, w1)
        np.testing.assert_array_equal(a0, a1)
        for row in range(2):
            np.testing.assert_array_equal(
                default.statevector(row), explicit.statevector(row)
            )

    def test_probabilities_are_host_numpy(self, noisy_ghz3):
        backend = StatevectorBackend(3)
        backend.run_fixed(noisy_ghz3, {})
        probs = backend.probabilities()
        assert isinstance(probs, np.ndarray)
        assert probs.dtype == np.float64

    def test_repr_names_the_module(self):
        backend = StatevectorBackend(2, config=Config(array_module="numpy"))
        assert "xp=numpy" in repr(backend)
