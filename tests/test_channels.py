"""Kraus channels: CPTP verification, unitary-mixture detection, twirling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.kraus import KrausChannel
from repro.channels.standard import (
    amplitude_damping,
    bit_flip,
    depolarizing,
    generalized_amplitude_damping,
    pauli_channel,
    phase_damping,
    phase_flip,
    reset_channel,
    two_qubit_depolarizing,
)
from repro.channels.unitary_mixture import as_unitary_mixture, is_unitary_mixture
from repro.errors import ChannelError

probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
small_probs = st.floats(min_value=0.0, max_value=0.3, allow_nan=False)

ALL_CHANNELS = [
    depolarizing(0.1),
    two_qubit_depolarizing(0.05),
    bit_flip(0.2),
    phase_flip(0.15),
    pauli_channel(0.05, 0.02, 0.08),
    amplitude_damping(0.3),
    generalized_amplitude_damping(0.25, 0.1),
    phase_damping(0.2),
    reset_channel(0.1),
]


class TestCPTP:
    @pytest.mark.parametrize("channel", ALL_CHANNELS, ids=lambda c: c.name)
    def test_standard_channels_are_cptp(self, channel):
        dim = channel.dim
        total = sum(k.conj().T @ k for k in channel.kraus_ops)
        assert np.allclose(total, np.eye(dim), atol=1e-10)

    def test_cptp_violation_rejected(self):
        with pytest.raises(ChannelError):
            KrausChannel("bad", [np.eye(2) * 0.5])

    def test_empty_rejected(self):
        with pytest.raises(ChannelError):
            KrausChannel("empty", [])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ChannelError):
            KrausChannel("bad", [np.eye(2), np.eye(4)])

    @pytest.mark.parametrize("channel", ALL_CHANNELS, ids=lambda c: c.name)
    def test_nominal_probs_sum_to_one(self, channel):
        assert abs(sum(channel.nominal_probs) - 1.0) < 1e-10

    @pytest.mark.parametrize("channel", ALL_CHANNELS, ids=lambda c: c.name)
    def test_choi_matrix_is_psd_with_trace_dim(self, channel):
        choi = channel.choi_matrix()
        eigs = np.linalg.eigvalsh(choi)
        assert eigs.min() > -1e-10
        assert abs(np.trace(choi).real - channel.dim) < 1e-9

    @given(small_probs)
    @settings(max_examples=25, deadline=None)
    def test_depolarizing_cptp_for_any_p(self, p):
        ch = depolarizing(p)
        total = sum(k.conj().T @ k for k in ch.kraus_ops)
        assert np.allclose(total, np.eye(2), atol=1e-10)

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ChannelError):
            depolarizing(1.5)
        with pytest.raises(ChannelError):
            bit_flip(-0.1)
        with pytest.raises(ChannelError):
            pauli_channel(0.6, 0.5, 0.3)


class TestUnitaryMixture:
    @pytest.mark.parametrize(
        "channel",
        [depolarizing(0.1), bit_flip(0.2), phase_flip(0.1), pauli_channel(0.1, 0.05, 0.02),
         two_qubit_depolarizing(0.07)],
        ids=lambda c: c.name,
    )
    def test_pauli_channels_detected(self, channel):
        mixture = as_unitary_mixture(channel)
        assert mixture is not None
        assert abs(sum(mixture.probs) - 1.0) < 1e-9
        for u in mixture.unitaries:
            assert np.allclose(u @ u.conj().T, np.eye(u.shape[0]), atol=1e-9)

    @pytest.mark.parametrize(
        "channel",
        [amplitude_damping(0.3), phase_damping(0.2), reset_channel(0.2),
         generalized_amplitude_damping(0.2, 0.3)],
        ids=lambda c: c.name,
    )
    def test_general_channels_rejected(self, channel):
        assert as_unitary_mixture(channel) is None
        assert not is_unitary_mixture(channel)

    def test_mixture_reconstructs_kraus(self):
        ch = depolarizing(0.25)
        mixture = as_unitary_mixture(ch)
        for p, u, k in zip(mixture.probs, mixture.unitaries, ch.kraus_ops):
            assert np.allclose(np.sqrt(p) * u, k)

    def test_probabilities_state_independent_claim(self, rng):
        """For unitary mixtures the nominal probs equal state probs."""
        from repro.linalg import random_statevector

        ch = depolarizing(0.3)
        psi = random_statevector(1, rng)
        for k, p_nominal in zip(ch.kraus_ops, ch.nominal_probs):
            phi = k @ psi
            assert abs(np.vdot(phi, phi).real - p_nominal) < 1e-10


class TestChannelMethods:
    def test_dominant_index_is_identityish(self):
        assert depolarizing(0.1).dominant_index() == 0
        assert amplitude_damping(0.2).dominant_index() == 0

    def test_is_trivial(self):
        ident = KrausChannel("id", [np.eye(2)])
        assert ident.is_trivial()
        assert not depolarizing(0.1).is_trivial()

    def test_apply_to_density_matrix_preserves_trace(self):
        rho = np.array([[0.7, 0.2j], [-0.2j, 0.3]])
        for ch in ALL_CHANNELS:
            if ch.num_qubits != 1:
                continue
            out = ch.apply_to_density_matrix(rho)
            assert abs(np.trace(out) - 1.0) < 1e-10

    def test_depolarizing_contracts_bloch(self):
        rho = np.array([[1.0, 0.0], [0.0, 0.0]])  # |0><0|, bloch z=+1
        out = depolarizing(0.3).apply_to_density_matrix(rho)
        z = np.real(out[0, 0] - out[1, 1])
        assert abs(z - (1 - 0.4)) < 1e-10  # 1 - 4p/3 with p=0.3

    def test_compose_unitary(self):
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        ch = bit_flip(0.1).compose_unitary(h, before=True)
        total = sum(k.conj().T @ k for k in ch.kraus_ops)
        assert np.allclose(total, np.eye(2), atol=1e-10)


class TestPauliTwirl:
    def test_twirled_is_pauli_mixture(self):
        twirled = amplitude_damping(0.3).pauli_twirl()
        assert is_unitary_mixture(twirled)

    def test_twirl_preserves_pauli_channels(self):
        ch = depolarizing(0.2)
        twirled = ch.pauli_twirl()
        assert np.allclose(sorted(twirled.nominal_probs), sorted(ch.nominal_probs), atol=1e-9)

    def test_twirl_matches_exact_average(self):
        """Twirled channel = average over Pauli conjugations of the original."""
        from repro.channels.pauli import pauli_string_matrix

        ch = amplitude_damping(0.4)
        rho = np.array([[0.6, 0.1 + 0.2j], [0.1 - 0.2j, 0.4]])
        twirled_out = ch.pauli_twirl().apply_to_density_matrix(rho)
        avg = np.zeros((2, 2), dtype=complex)
        for lab in "IXYZ":
            p = pauli_string_matrix(lab)
            avg += p @ ch.apply_to_density_matrix(p @ rho @ p) @ p / 4.0
        assert np.allclose(twirled_out, avg, atol=1e-9)

    def test_twirl_rejects_multiqubit(self):
        with pytest.raises(ChannelError):
            two_qubit_depolarizing(0.1).pauli_twirl()
