"""The scenario sweep harness: spec parsing, runner, oracle wiring, report."""

import json

import pytest

from repro.sweep import (
    CellSpec,
    FamilySweep,
    OracleSpec,
    SweepSpec,
    SweepSpecError,
    coverage_matrix,
    load_spec,
    make_sampler,
    render_markdown,
    run_cell,
    run_sweep,
    spec_from_dict,
    summary_dict,
    write_report,
)

SMOKE_DICT = {
    "name": "unit",
    "seed": 11,
    "shots": 3000,
    "sampler": "exhaustive",
    "sampler_options": {"cutoff": 1.0e-5},
    "strategies": ["serial", "vectorized"],
    "oracle": {"distribution_max_qubits": 6, "tvd_tolerance": 0.08},
    "sweeps": [
        {"family": "ghz", "widths": [3], "profiles": ["superconducting_median"]},
    ],
}


def _spec(**overrides):
    data = json.loads(json.dumps(SMOKE_DICT))
    data.update(overrides)
    return spec_from_dict(data)


class TestSpecParsing:
    def test_round_trip_dict(self):
        spec = spec_from_dict(SMOKE_DICT)
        assert spec.name == "unit"
        assert spec.strategies == ("serial", "vectorized")
        assert spec.oracle.tvd_tolerance == 0.08
        assert spec.to_dict()["sweeps"][0]["family"] == "ghz"

    def test_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SMOKE_DICT))
        assert load_spec(str(path)).name == "unit"

    def test_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(SMOKE_DICT))
        spec = load_spec(str(path))
        assert spec.shots == 3000
        assert spec.sweeps[0].widths == (3,)

    def test_repo_smoke_spec_parses(self):
        spec = load_spec("benchmarks/sweeps/smoke.yaml")
        cells = spec.expand()
        assert len(cells) == 6
        assert sum(len(c.strategies) for c in cells) >= 8  # acceptance floor
        # The clifford-only cell rides past the dense width cap.
        wide = [c for c in cells if c.family == "surface_syndrome"]
        assert wide and wide[0].width >= 30
        assert wide[0].strategies == ("clifford",)

    def test_unknown_family(self):
        with pytest.raises(SweepSpecError, match="unknown workload family"):
            _spec(sweeps=[{"family": "nope", "widths": [3], "profiles": ["uniform_depolarizing"]}])

    def test_unknown_profile(self):
        with pytest.raises(SweepSpecError, match="unknown noise profile"):
            _spec(sweeps=[{"family": "ghz", "widths": [3], "profiles": ["nope"]}])

    def test_unknown_strategy(self):
        with pytest.raises(SweepSpecError, match="unknown strategy"):
            _spec(strategies=["serial", "warp"])

    def test_unknown_top_level_key(self):
        data = dict(SMOKE_DICT, surprise=1)
        with pytest.raises(SweepSpecError, match="unknown key"):
            spec_from_dict(data)

    def test_unknown_oracle_key(self):
        data = json.loads(json.dumps(SMOKE_DICT))
        data["oracle"]["tvd"] = 0.1
        with pytest.raises(SweepSpecError, match="oracle"):
            spec_from_dict(data)

    def test_invalid_shots_and_sampler(self):
        with pytest.raises(SweepSpecError, match="shots"):
            _spec(shots=0)
        with pytest.raises(SweepSpecError, match="unknown sampler"):
            _spec(sampler="magic")

    def test_expand_order_and_duplicates(self):
        spec = _spec(sweeps=[
            {"family": "ghz", "widths": [3, 4],
             "profiles": ["uniform_depolarizing", "superconducting_median"]},
        ])
        cells = spec.expand()
        assert [c.cell_id for c in cells] == [
            "ghz_w3_uniform_depolarizing",
            "ghz_w3_superconducting_median",
            "ghz_w4_uniform_depolarizing",
            "ghz_w4_superconducting_median",
        ]
        dup = _spec(sweeps=[
            {"family": "ghz", "widths": [3], "profiles": ["uniform_depolarizing"]},
            {"family": "ghz", "widths": [3], "profiles": ["uniform_depolarizing"]},
        ])
        with pytest.raises(SweepSpecError, match="duplicate"):
            dup.expand()


class TestSampler:
    def _cell(self, **kw):
        base = dict(family="ghz", width=3, profile="uniform_depolarizing",
                    shots=1000, sampler="exhaustive", sampler_options=(), seed=1)
        base.update(kw)
        return CellSpec(**base)

    def test_exhaustive_proportional(self):
        sampler = make_sampler(self._cell(sampler_options=(("cutoff", 1e-4),)))
        assert sampler.total_shots == 1000
        assert sampler.cutoff == 1e-4

    def test_probabilistic(self):
        sampler = make_sampler(
            self._cell(sampler="probabilistic", sampler_options=(("nsamples", 50),))
        )
        assert sampler.nsamples == 50
        assert sampler.nshots == 20

    def test_unknown_option_rejected(self):
        from repro.errors import SweepError

        with pytest.raises(SweepError, match="unknown exhaustive sampler options"):
            make_sampler(self._cell(sampler_options=(("typo", 1),)))


class TestRunner:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sweep(spec_from_dict(SMOKE_DICT))

    def test_cell_passes_all_tiers(self, result):
        (cell,) = result.cells
        assert cell.status == "pass"
        assert cell.finding("strategy_equivalence").status == "pass"
        assert cell.finding("distribution").status == "pass"
        streaming = [f for f in cell.findings if f.check == "streaming_concat"]
        assert len(streaming) == 2  # one per strategy
        assert all(f.status == "pass" for f in streaming)
        assert 0.9 < cell.coverage <= 1.0

    def test_verified_combos(self, result):
        assert sorted(result.verified_combos()) == [
            ("ghz", 3, "serial"), ("ghz", 3, "vectorized"),
        ]
        assert not result.failed

    def test_bench_rows_validate_against_harness_schema(self, result):
        import os
        import sys

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))
        import _harness

        (cell,) = result.cells
        payload = _harness.result_payload(
            f"sweep_{cell.cell_id}", cell.bench_rows(), cell.workload_dict()
        )
        _harness.validate_payload(payload)
        assert payload["rows"][0]["equivalence"] == "reference"
        assert payload["rows"][1]["equivalence"] == "pass"

    def test_out_of_range_width_skips(self):
        spec = _spec(sweeps=[
            {"family": "qaoa_ring", "widths": [2], "profiles": ["uniform_depolarizing"]},
        ])  # qaoa_ring needs >= 3 qubits
        result = run_sweep(spec)
        (cell,) = result.cells
        assert cell.status == "skip"
        assert "outside" in cell.skip_reason
        assert cell.verified_strategies() == []
        assert cell.bench_rows() == []

    def test_wide_cell_skips_distribution_only(self):
        spec = _spec(
            shots=400,
            oracle={"distribution_max_qubits": 4},
            sweeps=[{"family": "ghz", "widths": [6],
                     "profiles": ["uniform_depolarizing"]}],
        )
        (cell,) = run_sweep(spec).cells
        assert cell.status == "pass"  # skip of one tier never fails a cell
        assert cell.finding("distribution").status == "skip"
        assert cell.finding("strategy_equivalence").status == "pass"

    def test_non_unitary_profile_skips_distribution(self):
        spec = _spec(
            shots=400,
            sweeps=[{"family": "ghz", "widths": [3],
                     "profiles": ["relaxation_dominated"]}],
        )
        (cell,) = run_sweep(spec).cells
        assert cell.status == "pass"
        assert cell.finding("distribution").status == "skip"
        assert "non-unitary" in cell.finding("distribution").detail

    def test_probabilistic_sampler_skips_distribution(self):
        spec = _spec(shots=400, sampler="probabilistic",
                     sampler_options={"nsamples": 40})
        (cell,) = run_sweep(spec).cells
        assert cell.status == "pass"
        assert cell.finding("distribution").status == "skip"
        assert "proportionally" in cell.finding("distribution").detail

    def test_progress_callback(self):
        seen = []
        run_sweep(_spec(shots=200), progress=lambda c: seen.append(c.cell_id))
        assert seen == ["ghz_w3_superconducting_median"]

    def test_run_cell_serial_only(self):
        cell = CellSpec(family="ghz", width=3, profile="uniform_depolarizing",
                        shots=500, sampler="exhaustive", sampler_options=(), seed=2)
        result = run_cell(cell, ("serial",), OracleSpec())
        assert result.status == "pass"
        # Single strategy: equivalence tier has nothing to compare.
        assert result.finding("strategy_equivalence") is None
        assert result.verified_strategies() == ["serial"]


class TestReport:
    @pytest.fixture(scope="class")
    def result(self):
        spec = spec_from_dict(dict(
            SMOKE_DICT,
            sweeps=[
                {"family": "ghz", "widths": [3], "profiles": ["superconducting_median"]},
                {"family": "qaoa_ring", "widths": [2], "profiles": ["uniform_depolarizing"]},
            ],
        ))
        return run_sweep(spec)

    def test_coverage_matrix_covers_every_combo(self, result):
        records = coverage_matrix(result)
        assert len(records) == 4  # 2 cells x 2 strategies (skip included)
        statuses = {(r["family"], r["strategy"]): r["status"] for r in records}
        assert statuses[("ghz", "serial")] == "pass"
        assert statuses[("qaoa_ring", "serial")] == "skip"

    def test_markdown_contains_matrix_and_skips(self, result):
        md = render_markdown(result)
        assert "Sweep coverage matrix" in md
        assert "profile: `superconducting_median`" in md
        assert "| ghz | 3 |" in md
        assert "Skipped cells" in md
        assert "qaoa_ring_w2_uniform_depolarizing" in md

    def test_summary_json_serializable(self, result):
        summary = summary_dict(result)
        blob = json.loads(json.dumps(summary))
        assert blob["cells"] == {
            "total": 2, "pass": 1, "fail": 0, "skip": 1, "timeout": 0,
        }
        assert len(blob["verified_combos"]) == 2
        assert blob["spec"]["name"] == "unit"

    def test_write_report(self, result, tmp_path):
        md = tmp_path / "report.md"
        js = tmp_path / "report.json"
        summary = write_report(result, str(md), str(js))
        assert md.read_text().startswith("# Sweep coverage matrix")
        assert json.loads(js.read_text()) == json.loads(json.dumps(summary))


class TestBudgets:
    def test_budget_parsing_and_override(self):
        spec = _spec(
            cell_budget_seconds=30.0,
            sweeps=[
                {"family": "ghz", "widths": [3],
                 "profiles": ["uniform_depolarizing"]},
                {"family": "ghz", "widths": [4],
                 "profiles": ["uniform_depolarizing"], "budget_seconds": 5.0},
            ],
        )
        cells = spec.expand()
        assert cells[0].budget_seconds == 30.0  # spec-level default
        assert cells[1].budget_seconds == 5.0  # family override wins
        blob = spec.to_dict()
        assert blob["cell_budget_seconds"] == 30.0
        assert blob["sweeps"][1]["budget_seconds"] == 5.0
        # Round trip preserves budgets.
        again = spec_from_dict(blob)
        assert [c.budget_seconds for c in again.expand()] == [30.0, 5.0]

    def test_no_budget_means_none(self):
        (cell,) = _spec().expand()
        assert cell.budget_seconds is None

    def test_invalid_budget_rejected(self):
        with pytest.raises(SweepSpecError, match="budget"):
            _spec(cell_budget_seconds=0)
        with pytest.raises(SweepSpecError, match="budget"):
            _spec(sweeps=[{"family": "ghz", "widths": [3],
                           "profiles": ["uniform_depolarizing"],
                           "budget_seconds": -1}])

    def test_blown_budget_marks_timeout(self):
        from repro.sweep import OracleSpec, run_cell

        cell = CellSpec(
            family="ghz", width=3, profile="uniform_depolarizing",
            shots=500, sampler="exhaustive", sampler_options=(), seed=2,
            budget_seconds=1e-9,
        )
        result = run_cell(cell, ("serial",), OracleSpec())
        assert result.status == "timeout"
        assert result.elapsed_seconds > 1e-9
        # The strategy passed its own checks, but an over-budget cell
        # contributes no *verified* combos.
        assert result.outcomes[0].verified
        assert result.verified_strategies() == []

    def test_timeout_in_report_and_counts(self):
        spec = _spec(cell_budget_seconds=1e-9, shots=300)
        result = run_sweep(spec)
        assert result.counts()["timeout"] == 1
        assert result.timed_out and not result.failed
        md = render_markdown(result)
        assert "Timeouts" in md and "⏱" in md
        records = coverage_matrix(result)
        assert all(r["status"] == "timeout" for r in records)
        blob = summary_dict(result)
        assert blob["cells"]["timeout"] == 1
        finding = blob["findings"][0]
        assert finding["status"] == "timeout"
        assert finding["elapsed_seconds"] > 0
        assert finding["budget_seconds"] == 1e-9

    def test_oracle_failure_beats_timeout(self, monkeypatch):
        """A cell that both fails its oracle and blows its budget reports
        fail — an over-budget pass is a timeout, an over-budget fail is
        still a fail."""
        import repro.sweep.runner as runner_mod
        from repro.sweep import OracleSpec, run_cell
        from repro.sweep.oracle import FAIL, OracleFinding

        monkeypatch.setattr(
            runner_mod,
            "check_strategy_equivalence",
            lambda *a, **k: OracleFinding(
                check="strategy_equivalence", status=FAIL, detail="forced"
            ),
        )
        cell = CellSpec(
            family="ghz", width=3, profile="uniform_depolarizing",
            shots=200, sampler="exhaustive", sampler_options=(), seed=2,
            budget_seconds=1e-9,
        )
        result = run_cell(cell, ("serial", "vectorized"), OracleSpec())
        assert result.status == "fail"

    def test_bench_sweep_strict_exit_code(self, tmp_path):
        import os
        import sys

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))
        import bench_sweep

        data = dict(
            SMOKE_DICT, shots=300, cell_budget_seconds=1e-9,
            strategies=["serial"],
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(data))
        out = tmp_path / "out"
        argv = ["--spec", str(spec_path), "--out-dir", str(out)]
        assert bench_sweep.main(argv) == 0  # timeout alone is not a failure
        assert bench_sweep.main(argv + ["--strict"]) == 1


class TestFailurePath:
    def test_mismatched_table_fails_cell(self):
        """Feed the equivalence check a corrupted table: the finding and
        the cell-level verdict must both fail."""
        import numpy as np

        from repro.sweep.oracle import check_strategy_equivalence
        from repro.execution import ShotTable

        bits = np.zeros((4, 2), dtype=np.uint8)
        tids = np.zeros(4, dtype=np.int64)
        ref = ShotTable(bits=bits, trajectory_ids=tids, measured_qubits=(0, 1))
        bad_bits = bits.copy()
        bad_bits[0, 0] = 1
        bad = ShotTable(bits=bad_bits, trajectory_ids=tids, measured_qubits=(0, 1))
        finding = check_strategy_equivalence("serial", ref, {"vectorized": bad})
        assert finding.status == "fail"
        assert "vectorized" in finding.detail
        assert not finding.ok

    def test_streaming_concat_detects_dropped_chunk(self):
        import numpy as np

        from repro.sweep.oracle import check_streaming_concat
        from repro.execution import ShotTable

        bits = np.ones((6, 1), dtype=np.uint8)
        tids = np.arange(6, dtype=np.int64)
        full = ShotTable(bits=bits, trajectory_ids=tids, measured_qubits=(0,))
        half = ShotTable(bits=bits[:3], trajectory_ids=tids[:3], measured_qubits=(0,))
        finding = check_streaming_concat("serial", (half,), full)
        assert finding.status == "fail"
        assert check_streaming_concat("serial", (), full).status == "fail"

    def test_distribution_failure_reports_metrics(self):
        """A deliberately wrong empirical table must fail with TVD metrics."""
        import numpy as np

        from repro.channels.standard import device_profile
        from repro.circuits.library import build_workload, noisy
        from repro.sweep.oracle import check_distribution
        from repro.execution import ShotTable

        circuit = noisy(
            build_workload("ghz", 3, seed=1),
            device_profile("uniform_depolarizing").noise_model(),
        )
        # All-zeros shots: ~half the GHZ mass is on |111>, so TVD ~ 0.5.
        bits = np.zeros((2000, 3), dtype=np.uint8)
        table = ShotTable(
            bits=bits,
            trajectory_ids=np.zeros(2000, dtype=np.int64),
            measured_qubits=(0, 1, 2),
        )
        finding = check_distribution(
            circuit, table, 1.0, OracleSpec(), True, True
        )
        assert finding.status == "fail"
        assert finding.metric("tvd") > 0.3
