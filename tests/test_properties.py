"""Cross-cutting hypothesis property tests on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.backends.density_matrix import DensityMatrixBackend
from repro.backends.mps import MPSBackend
from repro.backends.statevector import StatevectorBackend
from repro.channels.standard import (
    amplitude_damping,
    depolarizing,
    pauli_channel,
    phase_damping,
)
from repro.circuits import Circuit, library
from repro.pts.base import NoiseSiteView
from repro.rng import make_rng

probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
angles = st.floats(min_value=-6.3, max_value=6.3, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestStatevectorInvariants:
    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_random_circuit_preserves_norm(self, seed, depth):
        circ = library.random_brickwork(5, depth, rng=make_rng(seed)).freeze()
        sv = StatevectorBackend(5)
        sv.run_fixed(circ)
        assert sv.norm_squared() == pytest.approx(1.0, abs=1e-9)

    @given(angles, angles)
    @settings(max_examples=20, deadline=None)
    def test_rotation_composition(self, a, b):
        sv1 = StatevectorBackend(1)
        sv1.run_fixed(Circuit(1).rz(a, 0).rz(b, 0).freeze())
        sv2 = StatevectorBackend(1)
        sv2.run_fixed(Circuit(1).rz(a + b, 0).freeze())
        assert abs(np.vdot(sv1.statevector, sv2.statevector)) == pytest.approx(1.0, abs=1e-9)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_sampling_marginals_match_probabilities(self, seed):
        circ = library.random_brickwork(4, 2, rng=make_rng(seed)).freeze()
        sv = StatevectorBackend(4)
        sv.run_fixed(circ)
        bits = sv.sample(30_000, range(4), make_rng(seed + 1))
        probs4 = sv.probabilities().reshape((2,) * 4)
        for q in range(4):
            exact_p1 = probs4.sum(axis=tuple(a for a in range(4) if a != q))[1]
            assert abs(bits[:, q].mean() - exact_p1) < 0.02


class TestChannelInvariants:
    @given(probs, probs)
    @settings(max_examples=25, deadline=None)
    def test_channel_composition_preserves_trace(self, p1, p2):
        assume(p1 <= 1.0 and p2 <= 1.0)
        dm = DensityMatrixBackend(1)
        from repro.circuits.gates import H

        dm.apply_gate(H, [0])
        dm.apply_channel(depolarizing(p1), [0])
        dm.apply_channel(amplitude_damping(p2), [0])
        assert np.trace(dm.density_matrix).real == pytest.approx(1.0, abs=1e-9)

    @given(probs, probs)
    @settings(max_examples=25, deadline=None)
    def test_density_matrix_stays_psd(self, p1, p2):
        dm = DensityMatrixBackend(1)
        from repro.circuits.gates import H

        dm.apply_gate(H, [0])
        dm.apply_channel(phase_damping(min(p1, 1.0)), [0])
        dm.apply_channel(depolarizing(min(p2, 1.0)), [0])
        eigs = np.linalg.eigvalsh(dm.density_matrix)
        assert eigs.min() > -1e-10

    @given(
        st.floats(min_value=0, max_value=0.33),
        st.floats(min_value=0, max_value=0.33),
        st.floats(min_value=0, max_value=0.33),
    )
    @settings(max_examples=25, deadline=None)
    def test_pauli_channel_nominal_probs(self, px, py, pz):
        ch = pauli_channel(px, py, pz)
        assert sum(ch.nominal_probs) == pytest.approx(1.0, abs=1e-9)


class TestMPSInvariants:
    @given(seeds, st.integers(min_value=2, max_value=16))
    @settings(max_examples=10, deadline=None)
    def test_fidelity_monotone_in_bond(self, seed, chi):
        circ = library.random_brickwork(6, 4, rng=make_rng(seed)).freeze()
        sv = StatevectorBackend(6)
        sv.run_fixed(circ)

        def fidelity(bond):
            mps = MPSBackend(6, max_bond=bond)
            mps.run_fixed(circ)
            psi = mps.to_statevector()
            psi = psi / np.linalg.norm(psi)
            return abs(np.vdot(sv.statevector, psi)) ** 2

        assert fidelity(2 * chi) >= fidelity(chi) - 0.02

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_cached_sampler_distribution_valid(self, seed):
        circ = library.random_brickwork(5, 3, rng=make_rng(seed)).freeze()
        mps = MPSBackend(5, max_bond=64)
        mps.run_fixed(circ)
        bits = mps.sample(2000, range(5), make_rng(seed + 1))
        assert bits.shape == (2000, 5)
        assert set(np.unique(bits)) <= {0, 1}


class TestPTSInvariants:
    @given(st.floats(min_value=0.001, max_value=0.3))
    @settings(max_examples=15, deadline=None)
    def test_joint_probabilities_sum_to_one_over_full_enumeration(self, p):
        """The full distribution of Kraus subsets has unit probability
        (paper Fig. 2 caption) — check by exhaustive enumeration."""
        from repro import NoiseModel
        from repro.pts import ExhaustivePTS

        circ = Circuit(2).h(0).cx(0, 1).measure_all()
        noisy = (
            NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(p)).apply(circ).freeze()
        )
        result = ExhaustivePTS(cutoff=1e-12, nshots=1).sample(noisy, make_rng(0))
        assert result.coverage() == pytest.approx(1.0, abs=1e-9)

    @given(seeds, st.integers(min_value=10, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_probabilistic_pts_deterministic_per_seed(self, seed, nsamples):
        from repro import NoiseModel
        from repro.pts import ProbabilisticPTS

        circ = Circuit(2).cx(0, 1).measure_all()
        noisy = (
            NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.1)).apply(circ).freeze()
        )
        a = ProbabilisticPTS(nsamples, 1).sample(noisy, make_rng(seed))
        b = ProbabilisticPTS(nsamples, 1).sample(noisy, make_rng(seed))
        assert [s.record.signature() for s in a.specs] == [
            s.record.signature() for s in b.specs
        ]
