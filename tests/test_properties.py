"""Cross-cutting hypothesis property tests on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.backends.density_matrix import DensityMatrixBackend
from repro.backends.mps import MPSBackend
from repro.backends.statevector import StatevectorBackend
from repro.channels.standard import (
    amplitude_damping,
    depolarizing,
    pauli_channel,
    phase_damping,
)
from repro.circuits import Circuit, library
from repro.pts.base import NoiseSiteView
from repro.rng import make_rng

probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
angles = st.floats(min_value=-6.3, max_value=6.3, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestStatevectorInvariants:
    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_random_circuit_preserves_norm(self, seed, depth):
        circ = library.random_brickwork(5, depth, rng=make_rng(seed)).freeze()
        sv = StatevectorBackend(5)
        sv.run_fixed(circ)
        assert sv.norm_squared() == pytest.approx(1.0, abs=1e-9)

    @given(angles, angles)
    @settings(max_examples=20, deadline=None)
    def test_rotation_composition(self, a, b):
        sv1 = StatevectorBackend(1)
        sv1.run_fixed(Circuit(1).rz(a, 0).rz(b, 0).freeze())
        sv2 = StatevectorBackend(1)
        sv2.run_fixed(Circuit(1).rz(a + b, 0).freeze())
        assert abs(np.vdot(sv1.statevector, sv2.statevector)) == pytest.approx(1.0, abs=1e-9)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_sampling_marginals_match_probabilities(self, seed):
        circ = library.random_brickwork(4, 2, rng=make_rng(seed)).freeze()
        sv = StatevectorBackend(4)
        sv.run_fixed(circ)
        bits = sv.sample(30_000, range(4), make_rng(seed + 1))
        probs4 = sv.probabilities().reshape((2,) * 4)
        for q in range(4):
            exact_p1 = probs4.sum(axis=tuple(a for a in range(4) if a != q))[1]
            assert abs(bits[:, q].mean() - exact_p1) < 0.02


class TestChannelInvariants:
    @given(probs, probs)
    @settings(max_examples=25, deadline=None)
    def test_channel_composition_preserves_trace(self, p1, p2):
        assume(p1 <= 1.0 and p2 <= 1.0)
        dm = DensityMatrixBackend(1)
        from repro.circuits.gates import H

        dm.apply_gate(H, [0])
        dm.apply_channel(depolarizing(p1), [0])
        dm.apply_channel(amplitude_damping(p2), [0])
        assert np.trace(dm.density_matrix).real == pytest.approx(1.0, abs=1e-9)

    @given(probs, probs)
    @settings(max_examples=25, deadline=None)
    def test_density_matrix_stays_psd(self, p1, p2):
        dm = DensityMatrixBackend(1)
        from repro.circuits.gates import H

        dm.apply_gate(H, [0])
        dm.apply_channel(phase_damping(min(p1, 1.0)), [0])
        dm.apply_channel(depolarizing(min(p2, 1.0)), [0])
        eigs = np.linalg.eigvalsh(dm.density_matrix)
        assert eigs.min() > -1e-10

    @given(
        st.floats(min_value=0, max_value=0.33),
        st.floats(min_value=0, max_value=0.33),
        st.floats(min_value=0, max_value=0.33),
    )
    @settings(max_examples=25, deadline=None)
    def test_pauli_channel_nominal_probs(self, px, py, pz):
        ch = pauli_channel(px, py, pz)
        assert sum(ch.nominal_probs) == pytest.approx(1.0, abs=1e-9)


class TestMPSInvariants:
    @given(seeds, st.integers(min_value=2, max_value=16))
    @settings(max_examples=10, deadline=None)
    def test_fidelity_monotone_in_bond(self, seed, chi):
        circ = library.random_brickwork(6, 4, rng=make_rng(seed)).freeze()
        sv = StatevectorBackend(6)
        sv.run_fixed(circ)

        def fidelity(bond):
            mps = MPSBackend(6, max_bond=bond)
            mps.run_fixed(circ)
            psi = mps.to_statevector()
            psi = psi / np.linalg.norm(psi)
            return abs(np.vdot(sv.statevector, psi)) ** 2

        assert fidelity(2 * chi) >= fidelity(chi) - 0.02

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_cached_sampler_distribution_valid(self, seed):
        circ = library.random_brickwork(5, 3, rng=make_rng(seed)).freeze()
        mps = MPSBackend(5, max_bond=64)
        mps.run_fixed(circ)
        bits = mps.sample(2000, range(5), make_rng(seed + 1))
        assert bits.shape == (2000, 5)
        assert set(np.unique(bits)) <= {0, 1}


class TestKrausCPTPClosure:
    """CPTP closure under every channel transformation PTS relies on.

    The transformations construct with ``check=False`` (they are closed by
    algebra, so the constructor check would be wasted work) — these
    properties are what licenses that skip.
    """

    @staticmethod
    def _assert_cptp(channel):
        total = sum(k.conj().T @ k for k in channel.kraus_ops)
        np.testing.assert_allclose(total, np.eye(channel.dim), atol=1e-9)
        assert sum(channel.nominal_probs) == pytest.approx(1.0, abs=1e-9)

    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_random_unitary_mixture_is_cptp(self, seed, nops):
        from repro.channels.kraus import KrausChannel
        from repro.linalg.unitary import random_unitary

        rng = make_rng(seed)
        weights = rng.random(nops) + 1e-3
        weights = weights / weights.sum()
        ops = [np.sqrt(w) * random_unitary(2, rng) for w in weights]
        ch = KrausChannel("mix", ops, check=True)  # must not raise
        self._assert_cptp(ch)
        np.testing.assert_allclose(ch.nominal_probs, weights, atol=1e-9)

    @given(seeds, probs, st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_compose_unitary_preserves_cptp(self, seed, p, before):
        from repro.linalg.unitary import random_unitary

        ch = amplitude_damping(min(p, 1.0))
        u = random_unitary(2, make_rng(seed))
        self._assert_cptp(ch.compose_unitary(u, before=before))

    @given(probs)
    @settings(max_examples=20, deadline=None)
    def test_pauli_twirl_preserves_cptp(self, p):
        twirled = amplitude_damping(min(p, 1.0)).pauli_twirl()
        self._assert_cptp(twirled)

    @given(seeds, probs, probs)
    @settings(max_examples=15, deadline=None)
    def test_twirl_then_compose_preserves_cptp(self, seed, p1, p2):
        from repro.linalg.unitary import random_unitary

        ch = phase_damping(min(p1, 1.0)).pauli_twirl()
        u = random_unitary(2, make_rng(seed))
        self._assert_cptp(ch.compose_unitary(u).compose_unitary(u, before=False))


class TestFusionWindowAlgebra:
    """Fused window matrix = ordered product of embedded members."""

    @given(
        seeds,
        st.integers(min_value=1, max_value=3),  # window width (kernel tiers)
        st.integers(min_value=1, max_value=5),  # operators in the window
    )
    @settings(max_examples=25, deadline=None)
    def test_fused_matrix_equals_ordered_product(self, seed, width, nops):
        from repro.linalg.fusion import (
            expand_to_support,
            fuse_window_matrix,
            window_support,
        )
        from repro.linalg.unitary import random_unitary

        rng = make_rng(seed)
        # Non-contiguous circuit qubit labels: the algebra must not assume
        # support == range(width).
        support = tuple(sorted(int(q) for q in rng.choice(6, size=width, replace=False)))
        ops = []
        for _ in range(nops):
            k = int(rng.integers(1, width + 1))
            # Arbitrary (possibly descending) qubit order within an operator.
            qubits = tuple(int(q) for q in rng.choice(support, size=k, replace=False))
            ops.append((random_unitary(2**k, rng), qubits))
        fused = fuse_window_matrix(ops, support)
        expected = np.eye(2**width, dtype=np.complex128)
        for matrix, qubits in ops:  # application order: index 0 acts first
            expected = expand_to_support(matrix, qubits, support) @ expected
        np.testing.assert_allclose(fused, expected, atol=1e-10)
        # A window of unitaries fuses to a unitary.
        np.testing.assert_allclose(
            fused @ fused.conj().T, np.eye(2**width), atol=1e-9
        )
        assert set(window_support([q for _, q in ops])) <= set(support)

    @given(seeds, st.integers(min_value=2, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_disjoint_support_embeddings_commute(self, seed, width):
        """Operators on disjoint qubits embed to commuting window matrices,
        so their fusion order inside a window cannot change the product."""
        from repro.linalg.fusion import expand_to_support, fuse_window_matrix
        from repro.linalg.unitary import random_unitary

        rng = make_rng(seed)
        support = tuple(range(width))
        t1, t2 = (int(q) for q in rng.choice(width, size=2, replace=False))
        u = random_unitary(2, rng)
        v = random_unitary(2, rng)
        a = expand_to_support(u, (t1,), support)
        b = expand_to_support(v, (t2,), support)
        np.testing.assert_allclose(a @ b, b @ a, atol=1e-10)
        np.testing.assert_allclose(
            fuse_window_matrix([(u, (t1,)), (v, (t2,))], support),
            fuse_window_matrix([(v, (t2,)), (u, (t1,))], support),
            atol=1e-10,
        )


class TestPTSInvariants:
    @given(st.floats(min_value=0.001, max_value=0.3))
    @settings(max_examples=15, deadline=None)
    def test_joint_probabilities_sum_to_one_over_full_enumeration(self, p):
        """The full distribution of Kraus subsets has unit probability
        (paper Fig. 2 caption) — check by exhaustive enumeration."""
        from repro import NoiseModel
        from repro.pts import ExhaustivePTS

        circ = Circuit(2).h(0).cx(0, 1).measure_all()
        noisy = (
            NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(p)).apply(circ).freeze()
        )
        result = ExhaustivePTS(cutoff=1e-12, nshots=1).sample(noisy, make_rng(0))
        assert result.coverage() == pytest.approx(1.0, abs=1e-9)

    @given(seeds, st.integers(min_value=10, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_probabilistic_pts_deterministic_per_seed(self, seed, nsamples):
        from repro import NoiseModel
        from repro.pts import ProbabilisticPTS

        circ = Circuit(2).cx(0, 1).measure_all()
        noisy = (
            NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.1)).apply(circ).freeze()
        )
        a = ProbabilisticPTS(nsamples, 1).sample(noisy, make_rng(seed))
        b = ProbabilisticPTS(nsamples, 1).sample(noisy, make_rng(seed))
        assert [s.record.signature() for s in a.specs] == [
            s.record.signature() for s in b.specs
        ]
