"""Small-width exact-oracle conformance: every named workload family.

For each family in the registry at n <= 5 qubits, a proportionally
apportioned exhaustive PTSBE run's pooled empirical distribution must
match the exact density-matrix reference — the same check the sweep
harness's distribution tier applies, exercised here as plain pytest so a
conformance break fails the unit suite even when no sweep runs.
"""

import pytest

from repro.channels.standard import device_profile
from repro.circuits.library import build_workload, get_workload, noisy, workload_names
from repro.execution import run_ptsbe
from repro.pts import ExhaustivePTS
from repro.sweep.oracle import PASS, check_distribution
from repro.sweep.spec import OracleSpec

SHOTS = 30_000
SEED = 13


def _width_for(family_name):
    fam = get_workload(family_name)
    return max(fam.min_width, min(5, fam.max_width))


@pytest.mark.parametrize("family_name", workload_names())
def test_family_matches_density_matrix_at_small_width(family_name):
    width = _width_for(family_name)
    if width > OracleSpec().distribution_max_qubits:
        pytest.skip(
            f"{family_name}'s minimum width {width} exceeds the "
            "density-matrix oracle cap (covered by the sweep's wide "
            "clifford cell instead)"
        )
    profile = device_profile("uniform_depolarizing")  # unitary mixture
    circuit = noisy(build_workload(family_name, width, seed=SEED), profile.noise_model())
    sampler = ExhaustivePTS(cutoff=1e-6, nshots=None, total_shots=SHOTS)
    result = run_ptsbe(circuit, sampler, seed=SEED)
    coverage = 0.0
    for record in result.records:
        coverage += record.nominal_probability
    finding = check_distribution(
        circuit,
        result.shot_table(),
        coverage,
        OracleSpec(tvd_tolerance=0.06),
        unitary_mixture=True,
        proportional_shots=True,
    )
    assert finding.status == PASS, f"{family_name} w{width}: {finding.detail}"
    assert finding.metric("tvd") < finding.metric("tvd_bound")


@pytest.mark.parametrize("family_name", workload_names())
def test_family_builders_deterministic_and_measured(family_name):
    width = _width_for(family_name)
    a = build_workload(family_name, width, seed=3)
    b = build_workload(family_name, width, seed=3)
    assert a.num_qubits == b.num_qubits == width
    assert len(a) == len(b)
    assert tuple(a.measured_qubits) == tuple(b.measured_qubits)
    assert len(a.measured_qubits) > 0  # oracle needs measured circuits


def test_relaxation_profile_is_skipped_by_distribution_tier():
    """Non-unitary profiles must skip (not fail) the statistical tier."""
    profile = device_profile("relaxation_dominated")
    assert not profile.unitary_mixture_only
    circuit = noisy(build_workload("ghz", 3, seed=SEED), profile.noise_model())
    sampler = ExhaustivePTS(cutoff=1e-4, nshots=None, total_shots=2000)
    result = run_ptsbe(circuit, sampler, seed=SEED)
    finding = check_distribution(
        circuit,
        result.shot_table(),
        1.0,
        OracleSpec(),
        unitary_mixture=False,
        proportional_shots=True,
    )
    assert finding.status == "skip"
    assert "non-unitary" in finding.detail
