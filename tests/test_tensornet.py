"""Tensornet strategy: schedule compile, batched stack, routing, conformance.

Contracts under test:

1. **Exact replay** — the compiled swap-routed schedule replayed over a
   :class:`BatchedMPSStack` at exact bond reproduces the dense
   ``run_fixed`` statevector for non-adjacent 2q gates, 3q windows, and
   both fusion modes.
2. **Batched kernels** — ``truncated_svd_batched`` and
   ``compute_right_environments_batched`` match their serial
   counterparts row by row.
3. **Truncation accounting** — per-row cumulative ``truncation_error``,
   equal to the serial MPS backend's scalar at ``B=1``.
4. **Routing and capacity** — ``strategy="auto"`` routes past the dense
   width cap to tensornet (recorded on the result); explicit dense
   strategies above the cap raise :class:`CapacityError` at dispatch.
5. **Executor contracts** — seeded bitwise replay, ordered streaming,
   ``retain=False`` / mid-stream ``close()``, dedup counting, and
   per-trajectory weights matching the dense serial engine.
6. **Distributional conformance** — at small width and exact bond the
   tensornet table passes the density-matrix oracle across multiple
   unitary-mixture noise profiles, like the clifford engine.
"""

import numpy as np
import pytest

from repro.backends.mps import BatchedMPSStack, MPSBackend
from repro.backends.mps_sampler import (
    compute_right_environments,
    compute_right_environments_batched,
)
from repro.backends.statevector import StatevectorBackend
from repro.channels import NoiseModel, depolarizing, two_qubit_depolarizing
from repro.channels.standard import device_profile
from repro.circuits import Circuit
from repro.circuits.gates import CCX
from repro.circuits.library import build_workload, noisy, random_brickwork
from repro.config import Config
from repro.errors import CapacityError, ExecutionError
from repro.execution import (
    BackendSpec,
    TensorNetExecutor,
    compile_schedule,
    resolve_strategy,
    run_ptsbe,
    run_ptsbe_stream,
)
from repro.execution.batched import DENSE_STRATEGIES
from repro.execution.tensornet import (
    NoiseStep,
    UnitaryStep,
    clear_schedule_cache,
    replay_schedule,
)
from repro.linalg.decompositions import truncated_svd, truncated_svd_batched
from repro.pts import ExhaustivePTS, ProportionalPTS
from repro.sweep.oracle import PASS, check_distribution
from repro.sweep.spec import OracleSpec

FUSED = Config(fusion="auto")
UNFUSED = Config(fusion="off")


def _dense_state(circuit):
    backend = StatevectorBackend(circuit.num_qubits)
    backend.run_fixed(circuit)
    return np.asarray(backend.statevector).copy()


def _replayed_state(circuit, config, batch=1, max_bond=4096, cutoff=0.0):
    schedule = compile_schedule(circuit, config)
    stack = BatchedMPSStack(
        circuit.num_qubits, batch, max_bond=max_bond, cutoff=cutoff
    )
    replay_schedule(stack, schedule, [{} for _ in range(batch)])
    return stack.row_statevector(0)


@pytest.fixture(autouse=True)
def _fresh_schedule_cache():
    clear_schedule_cache()
    yield
    clear_schedule_cache()


def _wide_nonclifford(num_qubits=30):
    """Past the dense cap, not frame-eligible (rx), cheap to simulate."""
    circ = Circuit(num_qubits)
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    circ.rx(0.3, 0)
    circ.measure_all()
    model = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.01))
    return model.apply(circ).freeze()


class TestExactReplay:
    def test_nonadjacent_2q_swap_routing(self):
        circ = Circuit(6)
        circ.h(0).t(1).rx(0.4, 2)
        circ.cx(0, 3)  # routed down over sites 1, 2
        circ.cz(2, 5)
        circ.rz(0.7, 4)
        circ.measure_all()
        circ.freeze()
        dense = _dense_state(circ)
        for config in (FUSED, UNFUSED):
            np.testing.assert_allclose(
                _replayed_state(circ, config), dense, atol=1e-12
            )

    def test_descending_targets_wire_permuted(self):
        circ = Circuit(5)
        circ.h(4).t(2)
        circ.cx(4, 1)  # control above target: operator must be permuted
        circ.cx(3, 0)
        circ.measure_all()
        circ.freeze()
        dense = _dense_state(circ)
        for config in (FUSED, UNFUSED):
            np.testing.assert_allclose(
                _replayed_state(circ, config), dense, atol=1e-12
            )

    def test_3q_gate_fused_window(self):
        circ = Circuit(6)
        circ.h(0).h(2).h(4).t(1)
        circ.gate(CCX, 0, 2, 4)  # non-contiguous 3q: routed + one 8x8 window
        circ.gate(CCX, 3, 1, 5)  # unsorted targets
        circ.measure_all()
        circ.freeze()
        dense = _dense_state(circ)
        for config in (FUSED, UNFUSED):
            np.testing.assert_allclose(
                _replayed_state(circ, config), dense, atol=1e-12
            )

    def test_brickwork_fused_matches_unfused(self):
        circ = random_brickwork(
            7, depth=3, rng=np.random.default_rng(5), measure=True
        ).freeze()
        dense = _dense_state(circ)
        np.testing.assert_allclose(_replayed_state(circ, FUSED), dense, atol=1e-10)
        np.testing.assert_allclose(_replayed_state(circ, UNFUSED), dense, atol=1e-10)

    def test_fused_schedule_is_shorter(self):
        circ = random_brickwork(
            6, depth=3, rng=np.random.default_rng(3), measure=True
        ).freeze()
        fused = compile_schedule(circ, FUSED)
        unfused = compile_schedule(circ, UNFUSED)
        assert len(fused.steps) < len(unfused.steps)
        # Fusion absorbs every 1q rotation into a neighboring window.
        assert fused.fused and not unfused.fused


class TestScheduleCompile:
    def test_cache_returns_same_object(self):
        circ = _wide_nonclifford(8)
        assert compile_schedule(circ, FUSED) is compile_schedule(circ, FUSED)
        assert compile_schedule(circ, FUSED) is not compile_schedule(circ, UNFUSED)

    def test_num_noise_sites_matches_circuit(self):
        circ = _wide_nonclifford(8)
        schedule = compile_schedule(circ, UNFUSED)
        noise_ops = [op for op in circ.operations if hasattr(op, "channel")]
        assert schedule.num_noise_sites == len(noise_ops)
        site_ids = {s.site_id for s in schedule.steps if isinstance(s, NoiseStep)}
        assert site_ids == {op.site_id for op in noise_ops}

    def test_requires_frozen(self):
        with pytest.raises(ExecutionError, match="frozen"):
            compile_schedule(Circuit(2).h(0).measure_all())

    def test_four_qubit_gate_rejected(self):
        from repro.circuits.gates import Gate

        g4 = Gate("g4", np.eye(16).astype(complex), check=False)
        circ = Circuit(4).gate(g4, 0, 1, 2, 3).measure_all().freeze()
        with pytest.raises(ExecutionError, match="decompose_to_2q"):
            compile_schedule(circ, UNFUSED)

    def test_noise_branch_count_preserved(self):
        circ = Circuit(2).h(0).cx(0, 1)
        circ.attach(depolarizing(0.1), 0)
        circ.measure_all().freeze()
        schedule = compile_schedule(circ, UNFUSED)
        (noise,) = [s for s in schedule.steps if isinstance(s, NoiseStep)]
        assert noise.ops.shape == (4, 2, 2)  # I, X, Y, Z branches

    def test_swap_steps_emitted_for_nonadjacent(self):
        circ = Circuit(4).cx(0, 3).measure_all().freeze()
        schedule = compile_schedule(circ, UNFUSED)
        spans = [s.span for s in schedule.steps if isinstance(s, UnitaryStep)]
        # Two SWAPs down, the gate, two SWAPs back.
        assert spans == [2, 2, 2, 2, 2]


class TestBatchedKernels:
    def test_batched_svd_matches_serial_rows(self):
        rng = np.random.default_rng(11)
        mats = rng.normal(size=(5, 8, 6)) + 1j * rng.normal(size=(5, 8, 6))
        u, s, vh, kept, disc = truncated_svd_batched(mats, max_rank=4, cutoff=1e-3)
        assert u.shape == (5, 8, kept) and s.shape == (5, kept)
        for m in range(5):
            _, s_ref, _, info = truncated_svd(mats[m], max_rank=4, cutoff=1e-3)
            # The batch keeps the widest row's rank; the leading singular
            # values and the discarded weight still match serial whenever
            # serial kept the same count.
            np.testing.assert_allclose(s[m, : info.kept], s_ref, atol=1e-12)
            if info.kept == kept:
                assert disc[m] == pytest.approx(info.discarded_weight, abs=1e-12)
            else:
                assert disc[m] <= info.discarded_weight + 1e-12
            # Row reconstruction equals the serial rank-`kept` reconstruction.
            u_ref, s_full, vh_ref = np.linalg.svd(mats[m], full_matrices=False)
            recon_ref = (u_ref[:, :kept] * s_full[:kept]) @ vh_ref[:kept]
            np.testing.assert_allclose((u[m] * s[m]) @ vh[m], recon_ref, atol=1e-10)

    def test_batched_svd_reconstructs_exactly_without_truncation(self):
        rng = np.random.default_rng(3)
        mats = rng.normal(size=(3, 6, 6)) + 1j * rng.normal(size=(3, 6, 6))
        u, s, vh, kept, disc = truncated_svd_batched(mats)
        assert kept == 6
        np.testing.assert_allclose(disc, 0.0, atol=1e-12)
        np.testing.assert_allclose(
            np.einsum("mik,mk,mkj->mij", u, s, vh), mats, atol=1e-12
        )

    def test_batched_environments_match_serial(self):
        stack = BatchedMPSStack(5, 3, max_bond=8)
        rng = np.random.default_rng(7)
        # Three distinct random product-of-gates rows via per-row 1q ops.
        for q in range(5):
            mats = rng.normal(size=(3, 2, 2)) + 1j * rng.normal(size=(3, 2, 2))
            stack.apply_1q_rows(mats, q)
        stack.apply_adjacent(np.kron(np.eye(2), np.eye(2)), 1)
        envs = compute_right_environments_batched(stack.tensors)
        for m in range(3):
            serial = compute_right_environments(stack.row_tensors(m))
            for e_b, e_s in zip(envs, serial):
                np.testing.assert_allclose(e_b[m], e_s, atol=1e-12)

    def test_env_head_equals_norms_squared(self):
        stack = BatchedMPSStack(4, 2, max_bond=8)
        stack.apply_1q(np.array([[0.8, 0], [0, 0.8]]), 1)  # non-unitary scale
        envs = compute_right_environments_batched(stack.tensors)
        np.testing.assert_allclose(
            envs[0][:, 0, 0].real, stack.norms_squared(), atol=1e-12
        )


class TestTruncationAccounting:
    def _adjacent_circuit(self, n=6, depth=4):
        rng = np.random.default_rng(19)
        circ = Circuit(n)
        for layer in range(depth):
            for q in range(n):
                circ.rx(float(rng.uniform(0, 2 * np.pi)), q)
            for q in range(layer % 2, n - 1, 2):
                circ.cz(q, q + 1)
        circ.measure_all()
        return circ.freeze()

    def test_b1_matches_serial_mps(self):
        circ = self._adjacent_circuit()
        schedule = compile_schedule(circ, UNFUSED)
        stack = BatchedMPSStack(6, 1, max_bond=2, cutoff=1e-12)
        replay_schedule(stack, schedule, [{}])
        serial = MPSBackend(6, max_bond=2, cutoff=1e-12, config=UNFUSED)
        serial.run_fixed(circ)
        assert stack.truncation_error.shape == (1,)
        assert stack.truncation_error[0] > 0  # bond 2 genuinely truncates
        assert stack.truncation_error[0] == pytest.approx(
            serial.truncation_error, rel=1e-9
        )

    def test_per_row_accumulation(self):
        # Amplitude damping (non-unitary Kraus) genuinely changes bond
        # spectra per realization; Pauli errors would not — they ride
        # through rx/rz/CZ as local frames with identical spectra.
        circ = noisy(
            build_workload("brickwork", 8, seed=2),
            device_profile("relaxation_dominated").noise_model(),
        )
        sampler = ExhaustivePTS(cutoff=1e-3, nshots=None, total_shots=200)
        from repro.rng import StreamFactory

        specs = sampler.sample(circ, StreamFactory(4).rng_for(0)).specs
        schedule = compile_schedule(circ, UNFUSED)
        stack = BatchedMPSStack(8, len(specs), max_bond=2, cutoff=1e-12)
        replay_schedule(stack, schedule, [s.choices for s in specs])
        assert stack.truncation_error.shape == (len(specs),)
        assert np.all(stack.truncation_error >= 0)
        assert np.any(stack.truncation_error > 0)
        # Different Kraus realizations truncate differently.
        assert len(np.unique(np.round(stack.truncation_error, 12))) > 1


class TestRoutingDecisions:
    def test_wide_nonclifford_routes_to_tensornet(self):
        circ = _wide_nonclifford(30)
        resolved, reason = resolve_strategy(circ, BackendSpec.statevector(), "auto")
        assert resolved == "tensornet"
        assert "auto->tensornet" in reason
        assert "max_dense_qubits" in reason

    def test_narrow_circuit_stays_dense(self):
        circ = _wide_nonclifford(8)
        resolved, _ = resolve_strategy(circ, BackendSpec.statevector(), "auto")
        assert resolved == "serial"

    def test_clifford_wins_over_tensornet(self):
        ideal = Circuit(30).h(0)
        for q in range(29):
            ideal.cx(q, q + 1)
        ideal.measure_all()
        circ = (
            NoiseModel()
            .add_all_qubit_gate_noise("cx", depolarizing(0.01))
            .apply(ideal)
            .freeze()
        )
        resolved, _ = resolve_strategy(circ, BackendSpec.statevector(), "auto")
        assert resolved == "clifford"

    def test_beyond_tensornet_cap_falls_back_dense(self):
        circ = _wide_nonclifford(8)
        cfg = Config(max_dense_qubits=4, max_tensornet_qubits=6)
        resolved, _ = resolve_strategy(circ, BackendSpec.statevector(), "auto", cfg)
        assert resolved == "serial"

    def test_routing_dense_pin_skips_tensornet(self):
        circ = _wide_nonclifford(30)
        resolved, reason = resolve_strategy(
            circ, BackendSpec.statevector(), "auto", Config(routing="dense")
        )
        assert resolved == "serial"
        assert "routing disabled" in reason

    def test_auto_records_engine_and_routing(self):
        circ = _wide_nonclifford(28)
        result = run_ptsbe(circ, ProportionalPTS(total_shots=200), seed=3)
        assert result.engine == "tensornet"
        assert result.routing.startswith("auto->tensornet")
        assert result.shot_table().bits.shape == (200, 28)


class TestCapacityErrors:
    @pytest.mark.parametrize("strategy", ["serial", "vectorized"])
    def test_explicit_dense_above_cap_raises(self, strategy):
        circ = _wide_nonclifford(28)
        backend = (
            BackendSpec.batched_statevector()
            if strategy == "vectorized"
            else BackendSpec.statevector()
        )
        with pytest.raises(CapacityError) as err:
            run_ptsbe(
                circ, ProportionalPTS(total_shots=100), backend, seed=1,
                strategy=strategy,
            )
        msg = str(err.value)
        assert "max_dense_qubits=26" in msg
        assert "28" in msg
        assert "'tensornet'" in msg and "'clifford'" in msg

    def test_routing_dense_pin_above_cap_raises(self):
        circ = _wide_nonclifford(28)
        dense_pin = BackendSpec("statevector", (("config", Config(routing="dense")),))
        with pytest.raises(CapacityError):
            run_ptsbe(circ, ProportionalPTS(total_shots=100), dense_pin, seed=1)

    def test_mps_spec_not_capacity_checked(self):
        # The serial MPS path has no dense width cap; 28q runs fine.
        circ = _wide_nonclifford(28)
        result = run_ptsbe(
            circ, ProportionalPTS(total_shots=50), BackendSpec.mps(max_bond=8),
            seed=1, strategy="serial",
        )
        assert result.total_shots == 50

    def test_dense_strategies_constant(self):
        assert DENSE_STRATEGIES == ("serial", "parallel", "vectorized", "sharded")
        assert "tensornet" not in DENSE_STRATEGIES
        assert "clifford" not in DENSE_STRATEGIES


@pytest.fixture
def small_noisy_circuit():
    return noisy(
        build_workload("ghz", 6, seed=0),
        device_profile("uniform_depolarizing").noise_model(),
    )


class TestExecutorContracts:
    def test_seeded_replay_bitwise(self, small_noisy_circuit):
        sampler = ExhaustivePTS(cutoff=1e-4, nshots=None, total_shots=2000)
        a = run_ptsbe(small_noisy_circuit, sampler, seed=17, strategy="tensornet")
        b = run_ptsbe(small_noisy_circuit, sampler, seed=17, strategy="tensornet")
        assert a.engine == b.engine == "tensornet"
        np.testing.assert_array_equal(a.shot_table().bits, b.shot_table().bits)
        np.testing.assert_array_equal(
            a.shot_table().trajectory_ids, b.shot_table().trajectory_ids
        )

    def test_streaming_chunks_concatenate_ordered(self, small_noisy_circuit):
        sampler = ExhaustivePTS(cutoff=1e-4, nshots=None, total_shots=3000)
        stream = run_ptsbe_stream(
            small_noisy_circuit, sampler, seed=17, strategy="tensornet",
            executor_kwargs={"max_batch": 8},
        )
        chunks = [c.shot_table() for c in stream if c.num_shots]
        result = stream.finalize()
        ids = [t.trajectory_ids[0] for t in chunks]
        assert ids == sorted(ids)  # ordered delivery across stacked chunks
        from repro.execution.results import ShotTable

        concat = ShotTable.concatenate(chunks)
        np.testing.assert_array_equal(concat.bits, result.shot_table().bits)

    def test_retain_false_streams_without_finalize(self, small_noisy_circuit):
        stream = run_ptsbe_stream(
            small_noisy_circuit, ProportionalPTS(total_shots=1000), seed=3,
            strategy="tensornet", retain=False,
        )
        total = sum(chunk.num_shots for chunk in stream)
        assert total == 1000
        with pytest.raises(ExecutionError):
            stream.finalize()

    def test_midstream_close(self, small_noisy_circuit):
        stream = run_ptsbe_stream(
            small_noisy_circuit,
            ExhaustivePTS(cutoff=1e-4, nshots=None, total_shots=3000),
            seed=3, strategy="tensornet", executor_kwargs={"max_batch": 4},
        )
        next(iter(stream))
        stream.close()  # must not raise

    def test_dedup_counts_unique_preparations(self, small_noisy_circuit):
        sampler = ExhaustivePTS(cutoff=1e-4, nshots=None, total_shots=2000)
        result = run_ptsbe(
            small_noisy_circuit, sampler, seed=13, strategy="tensornet"
        )
        assert result.unique_preparations is not None
        assert result.unique_preparations <= result.num_trajectories

    def test_weights_match_dense_serial(self, small_noisy_circuit):
        sampler = ExhaustivePTS(cutoff=1e-4, nshots=None, total_shots=2000)
        tn = run_ptsbe(small_noisy_circuit, sampler, seed=13, strategy="tensornet")
        serial = run_ptsbe(small_noisy_circuit, sampler, seed=13, strategy="serial")
        tw = {r.trajectory_id: r.weight for r in tn.records}
        sw = {r.trajectory_id: r.weight for r in serial.records}
        assert tw.keys() == sw.keys()
        for tid, weight in tw.items():
            assert weight == pytest.approx(sw[tid], rel=1e-9, abs=1e-12)

    def test_backend_factory_rejected(self):
        with pytest.raises(ExecutionError, match="factory"):
            TensorNetExecutor(backend=lambda n: StatevectorBackend(n))

    def test_sample_kwargs_rejected(self):
        with pytest.raises(ExecutionError, match="sample_kwargs"):
            TensorNetExecutor(sample_kwargs={"mode": "naive"})

    def test_bad_max_batch_rejected(self):
        with pytest.raises(ExecutionError, match="max_batch"):
            TensorNetExecutor(max_batch=0)

    def test_bond_resolution_order(self):
        # Explicit arg > spec options > config default.
        assert TensorNetExecutor(BackendSpec.mps(max_bond=8), max_bond=5).max_bond == 5
        assert TensorNetExecutor(BackendSpec.mps(max_bond=8)).max_bond == 8
        cfg = Config(tensornet_max_bond=12)
        assert TensorNetExecutor(config=cfg).max_bond == 12
        assert TensorNetExecutor().max_bond == Config().default_bond_dim

    def test_width_above_tensornet_cap_raises(self):
        circ = _wide_nonclifford(8)
        exe = TensorNetExecutor(config=Config(max_tensornet_qubits=6))
        from repro.pts.base import NoiseSiteView, PTSAlgorithm

        spec = PTSAlgorithm.make_spec(NoiseSiteView(circ), [], 10, trajectory_id=0)
        with pytest.raises(ExecutionError, match="max_tensornet_qubits"):
            exe.execute_stream(circ, [spec], seed=0)

    def test_no_measurements_rejected(self):
        circ = Circuit(2).h(0)
        circ.attach(depolarizing(0.1), 0)
        circ.freeze()
        with pytest.raises(ExecutionError, match="measure"):
            TensorNetExecutor().execute_stream(circ, [object()], seed=0)

    def test_no_specs_rejected(self):
        circ = Circuit(2).h(0).measure_all().freeze()
        with pytest.raises(ExecutionError, match="specs"):
            TensorNetExecutor().execute_stream(circ, [], seed=0)


class TestDistributionalConformance:
    @pytest.mark.parametrize(
        "profile", ["uniform_depolarizing", "superconducting_median"]
    )
    def test_exact_bond_matches_density_matrix(self, profile):
        """n<=10 at exact bond: the tensornet table passes the same
        density-matrix distribution tier the dense reference passes."""
        circuit = noisy(
            build_workload("ghz", 6, seed=0),
            device_profile(profile).noise_model(),
        )
        sampler = ExhaustivePTS(cutoff=1e-4, nshots=None, total_shots=20_000)
        tn = run_ptsbe(circuit, sampler, seed=13, strategy="tensornet")
        serial = run_ptsbe(circuit, sampler, seed=13, strategy="serial")
        coverage = sum(r.nominal_probability for r in tn.records)
        oracle = OracleSpec(tvd_tolerance=0.05)
        for result in (tn, serial):
            finding = check_distribution(
                circuit,
                result.shot_table(),
                coverage,
                oracle,
                unitary_mixture=True,
                proportional_shots=True,
            )
            assert finding.status == PASS, f"{result.engine}: {finding.detail}"


class TestWideExecution:
    def test_40q_brickwork_tensornet_and_auto(self):
        circ = noisy(
            build_workload("brickwork", 40, seed=1),
            NoiseModel().add_all_qubit_gate_noise(
                "cz", two_qubit_depolarizing(0.005)
            ),
        )
        sampler = ProportionalPTS(total_shots=200)
        explicit = run_ptsbe(circ, sampler, seed=7, strategy="tensornet")
        assert explicit.engine == "tensornet"
        assert explicit.shot_table().bits.shape == (200, 40)
        stream = run_ptsbe_stream(circ, sampler, seed=7)
        assert stream.engine == "tensornet"
        assert stream.routing.startswith("auto->tensornet")
        chunks = [c.shot_table() for c in stream if c.num_shots]
        auto = stream.finalize()
        ids = [t.trajectory_ids[0] for t in chunks]
        assert ids == sorted(ids)
        np.testing.assert_array_equal(
            auto.shot_table().bits, explicit.shot_table().bits
        )
