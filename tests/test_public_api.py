"""Public API surface, config, and error-hierarchy contracts."""

import numpy as np
import pytest

import repro
from repro.config import Config, DEFAULT_CONFIG, configure
from repro.errors import (
    BackendError,
    CapacityError,
    ChannelError,
    CircuitError,
    DataError,
    DeviceError,
    ExecutionError,
    GateError,
    NoiseModelError,
    QECError,
    ReproError,
    SamplingError,
    ZeroProbabilityTrajectory,
)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_pts_exports(self):
        from repro.pts import __all__ as pts_all
        import repro.pts as pts

        for name in pts_all:
            assert hasattr(pts, name)

    def test_analysis_exports(self):
        from repro.analysis import __all__ as a_all
        import repro.analysis as analysis

        for name in a_all:
            assert hasattr(analysis, name)

    def test_qec_exports(self):
        from repro.qec import __all__ as q_all
        import repro.qec as qec

        for name in q_all:
            assert hasattr(qec, name)

    def test_docstrings_on_public_modules(self):
        import repro.backends.mps
        import repro.execution.batched
        import repro.pts.probabilistic

        for mod in (repro, repro.pts.probabilistic, repro.execution.batched, repro.backends.mps):
            assert mod.__doc__ and len(mod.__doc__) > 40


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            CircuitError, GateError, ChannelError, NoiseModelError, BackendError,
            CapacityError, SamplingError, ExecutionError, DeviceError, QECError,
            DataError, ZeroProbabilityTrajectory,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_gate_error_is_circuit_error(self):
        assert issubclass(GateError, CircuitError)

    def test_capacity_is_backend_error(self):
        assert issubclass(CapacityError, BackendError)
        assert issubclass(ZeroProbabilityTrajectory, BackendError)


class TestConfig:
    def test_default_dtype(self):
        assert DEFAULT_CONFIG.dtype == np.dtype(np.complex128)

    def test_real_dtype_pairing(self):
        assert Config(dtype=np.dtype(np.complex64)).real_dtype() == np.dtype(np.float32)
        assert Config().real_dtype() == np.dtype(np.float64)

    def test_replace_returns_copy(self):
        cfg = Config()
        other = cfg.replace(max_dense_qubits=10)
        assert other.max_dense_qubits == 10
        assert cfg.max_dense_qubits != 10 or cfg is not other

    def test_configure_rejects_unknown_field(self):
        with pytest.raises(AttributeError):
            configure(nonsense=3)

    def test_configure_roundtrip(self):
        original = DEFAULT_CONFIG.max_dense_qubits
        try:
            configure(max_dense_qubits=20)
            assert DEFAULT_CONFIG.max_dense_qubits == 20
        finally:
            configure(max_dense_qubits=original)
