"""Algorithm-1 baseline: per-shot preparation, both channel branches."""

import numpy as np
import pytest

from repro.analysis.convergence import distribution_error, exact_distribution
from repro.backends.mps import MPSBackend
from repro.backends.statevector import StatevectorBackend
from repro.errors import ExecutionError
from repro.rng import make_rng
from repro.trajectory.baseline import TrajectorySimulator
from repro.trajectory.unitary_cache import ChannelAnalysisCache


def _sv_factory():
    return StatevectorBackend(3)


class TestSingleTrajectory:
    def test_prepared_state_is_normalized(self, noisy_ghz3):
        sim = TrajectorySimulator(_sv_factory)
        backend, record = sim.run_single_trajectory(noisy_ghz3, make_rng(0))
        assert backend.norm_squared() == pytest.approx(1.0, abs=1e-9)

    def test_record_disabled_by_default(self, noisy_ghz3):
        sim = TrajectorySimulator(_sv_factory)
        _, record = sim.run_single_trajectory(noisy_ghz3, make_rng(1))
        assert record.events == ()

    def test_record_events_when_enabled(self, noisy_ghz3):
        sim = TrajectorySimulator(_sv_factory, record_events=True)
        # Scan seeds until a trajectory has at least one error.
        for seed in range(50):
            _, record = sim.run_single_trajectory(noisy_ghz3, make_rng(seed))
            if record.events:
                assert all(e.kraus_index != 0 for e in record.events)
                return
        pytest.fail("no error trajectory in 50 seeds at p=0.05 x 4 sites")

    def test_general_channel_branch(self, noisy_ghz3_general):
        sim = TrajectorySimulator(_sv_factory, record_events=True)
        backend, record = sim.run_single_trajectory(noisy_ghz3_general, make_rng(2))
        assert backend.norm_squared() == pytest.approx(1.0, abs=1e-9)
        assert 0 < record.nominal_probability <= 1.0

    def test_requires_frozen(self):
        from repro.circuits import Circuit

        sim = TrajectorySimulator(_sv_factory)
        with pytest.raises(ExecutionError):
            sim.run_single_trajectory(Circuit(1).h(0), make_rng(0))


class TestConvergence:
    def test_unitary_mixture_converges_to_density_matrix(self, noisy_ghz3):
        exact = exact_distribution(noisy_ghz3)
        sim = TrajectorySimulator(_sv_factory)
        result = sim.sample(noisy_ghz3, 6000, seed=11)
        assert result.state_preparations == 6000  # the paper's complaint
        assert distribution_error(result.bits, exact) < 0.03

    def test_general_channel_converges_to_density_matrix(self, noisy_ghz3_general):
        exact = exact_distribution(noisy_ghz3_general)
        sim = TrajectorySimulator(_sv_factory)
        result = sim.sample(noisy_ghz3_general, 4000, seed=12)
        assert distribution_error(result.bits, exact) < 0.04

    def test_mixed_noise_circuit_converges(self, mixed_noise_circuit):
        exact = exact_distribution(mixed_noise_circuit)
        sim = TrajectorySimulator(lambda: StatevectorBackend(4))
        result = sim.sample(mixed_noise_circuit, 4000, seed=13)
        assert distribution_error(result.bits, exact) < 0.05

    def test_mps_backend_agrees(self, noisy_ghz3):
        exact = exact_distribution(noisy_ghz3)
        sim = TrajectorySimulator(lambda: MPSBackend(3, max_bond=16))
        result = sim.sample(noisy_ghz3, 3000, seed=14)
        assert distribution_error(result.bits, exact) < 0.05


class TestShotAccounting:
    def test_shots_per_trajectory_reduces_preparations(self, noisy_ghz3):
        sim = TrajectorySimulator(_sv_factory)
        result = sim.sample(noisy_ghz3, 1000, seed=15, shots_per_trajectory=100)
        assert result.state_preparations == 10
        assert result.num_shots == 1000

    def test_partial_last_batch(self, noisy_ghz3):
        sim = TrajectorySimulator(_sv_factory)
        result = sim.sample(noisy_ghz3, 150, seed=16, shots_per_trajectory=100)
        assert result.state_preparations == 2
        assert result.num_shots == 150

    def test_reproducible_with_seed(self, noisy_ghz3):
        sim = TrajectorySimulator(_sv_factory)
        a = sim.sample(noisy_ghz3, 200, seed=17)
        b = sim.sample(noisy_ghz3, 200, seed=17)
        assert np.array_equal(a.bits, b.bits)

    def test_no_measurement_rejected(self):
        from repro.circuits import Circuit

        circ = Circuit(1).h(0).freeze()
        with pytest.raises(ExecutionError):
            TrajectorySimulator(lambda: StatevectorBackend(1)).sample(circ, 10)


class TestChannelCache:
    def test_cache_hits_accumulate(self, noisy_ghz3):
        sim = TrajectorySimulator(_sv_factory)
        sim.sample(noisy_ghz3, 50, seed=18)
        # 4 sites sharing one channel object per rule: 1 distinct channel.
        assert sim.cache.misses <= 2
        assert sim.cache.hits > 50

    def test_branch_index_boundaries(self):
        from repro.channels.standard import depolarizing

        cache = ChannelAnalysisCache()
        ch = depolarizing(0.3)
        assert cache.branch_index(ch, 0.0) == 0
        assert cache.branch_index(ch, 0.999999) == 3
        assert cache.branch_index(ch, 0.699) == 0  # below 0.7
        assert cache.branch_index(ch, 0.701) == 1

    def test_clear(self):
        from repro.channels.standard import depolarizing

        cache = ChannelAnalysisCache()
        cache.mixture(depolarizing(0.1))
        cache.clear()
        assert cache.misses == 0 and not cache._mixtures
