"""Noise-model binding rules."""

import pytest

from repro.channels import NoiseModel, bit_flip, depolarizing, two_qubit_depolarizing
from repro.circuits import Circuit
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import NoiseModelError


class TestGateRules:
    def test_all_qubit_rule_fires_per_instance(self):
        circ = Circuit(3).cx(0, 1).cx(1, 2)
        model = NoiseModel().add_all_qubit_gate_noise("cx", two_qubit_depolarizing(0.01))
        noisy = model.apply(circ)
        assert noisy.num_noise_sites() == 2

    def test_single_qubit_channel_fans_out_on_two_qubit_gate(self):
        circ = Circuit(2).cx(0, 1)
        model = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.01))
        noisy = model.apply(circ).freeze()
        sites = noisy.noise_sites
        assert len(sites) == 2
        assert {s.qubits for s in sites} == {(0,), (1,)}

    def test_qubit_specific_rule(self):
        circ = Circuit(3).cx(0, 1).cx(1, 2)
        model = NoiseModel().add_gate_noise("cx", (1, 2), two_qubit_depolarizing(0.01))
        noisy = model.apply(circ).freeze()
        assert noisy.num_noise_sites() == 1
        assert noisy.noise_sites[0].qubits == (1, 2)

    def test_multiple_rules_all_fire(self):
        circ = Circuit(2).cx(0, 1)
        model = (
            NoiseModel()
            .add_all_qubit_gate_noise("cx", two_qubit_depolarizing(0.01))
            .add_all_qubit_gate_noise("cx", depolarizing(0.005))
        )
        noisy = model.apply(circ)
        assert noisy.num_noise_sites() == 3  # 1 two-qubit + 2 fanned out

    def test_noise_follows_gate_in_program_order(self):
        circ = Circuit(2).h(0).cx(0, 1)
        model = NoiseModel().add_all_qubit_gate_noise("h", depolarizing(0.01))
        ops = list(model.apply(circ))
        assert isinstance(ops[0], GateOp) and ops[0].gate.name == "h"
        assert isinstance(ops[1], NoiseOp)
        assert isinstance(ops[2], GateOp) and ops[2].gate.name == "cx"

    def test_bad_arity_rule_rejected(self):
        circ = Circuit(2).h(0)
        model = NoiseModel().add_all_qubit_gate_noise("h", two_qubit_depolarizing(0.01))
        with pytest.raises(NoiseModelError):
            model.apply(circ)


class TestBoundaryRules:
    def test_preparation_noise_on_every_qubit(self):
        circ = Circuit(3).h(0)
        model = NoiseModel().add_preparation_noise(bit_flip(0.01))
        noisy = model.apply(circ).freeze()
        prep_sites = [op for op in noisy][:3]
        assert all(isinstance(op, NoiseOp) for op in prep_sites)

    def test_measurement_noise_before_readout(self):
        circ = Circuit(2).h(0).measure_all()
        model = NoiseModel().add_measurement_noise(bit_flip(0.02))
        noisy = model.apply(circ)
        ops = list(noisy)
        meas_idx = next(i for i, op in enumerate(ops) if isinstance(op, MeasureOp))
        assert isinstance(ops[meas_idx - 1], NoiseOp)
        assert isinstance(ops[meas_idx - 2], NoiseOp)

    def test_prep_noise_arity_validated(self):
        with pytest.raises(NoiseModelError):
            NoiseModel().add_preparation_noise(two_qubit_depolarizing(0.1))

    def test_idle_noise_fills_gaps(self):
        circ = Circuit(3).h(0).h(1)  # qubit 2 idles in moment 0
        model = NoiseModel().add_idle_noise(depolarizing(0.001))
        noisy = model.apply(circ).freeze()
        idle_sites = [s for s in noisy.noise_sites if s.qubits == (2,)]
        assert len(idle_sites) == 1

    def test_idle_noise_moment_structure(self):
        circ = Circuit(2).h(0).h(0)  # qubit 1 idles in both moments
        model = NoiseModel().add_idle_noise(depolarizing(0.001))
        noisy = model.apply(circ).freeze()
        idle_on_1 = [s for s in noisy.noise_sites if s.qubits == (1,)]
        assert len(idle_on_1) == 2


class TestApplication:
    def test_apply_preserves_measurements(self, ghz3):
        model = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.01))
        noisy = model.apply(ghz3)
        assert len(noisy.measurements) == len(ghz3.measurements)

    def test_apply_returns_unfrozen(self, ghz3):
        noisy = NoiseModel().apply(ghz3)
        assert not noisy.frozen

    def test_noop_model_copies_circuit(self, ghz3):
        noisy = NoiseModel().apply(ghz3)
        assert len(noisy) == len(ghz3)
        assert noisy.num_noise_sites() == 0

    def test_existing_noise_ops_preserved(self):
        circ = Circuit(1)
        circ.attach(depolarizing(0.1), 0)
        noisy = NoiseModel().apply(circ)
        assert noisy.num_noise_sites() == 1
