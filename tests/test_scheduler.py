"""Scheduler edge cases and dedup-group merge order-independence."""

import random

import pytest

from repro.errors import ExecutionError
from repro.execution.scheduler import (
    Assignment,
    Scheduler,
    default_cost,
    greedy_by_cost,
    round_robin,
)
from repro.pts import TrajectorySpec, deduplicate_specs
from repro.trajectory.events import KrausEvent, TrajectoryRecord


def _spec(tid, shots, events=()):
    return TrajectorySpec(
        record=TrajectoryRecord(trajectory_id=tid, events=tuple(events)),
        num_shots=shots,
    )


def _event(site, kraus):
    return KrausEvent(
        site_id=site, kraus_index=kraus, qubits=(0,), channel_name="ch", probability=0.1
    )


class TestEmptySpecList:
    @pytest.mark.parametrize("policy", [round_robin, greedy_by_cost])
    def test_empty_specs_yield_empty_bins(self, policy):
        assignment = policy([], 3)
        assert assignment.num_devices == 3
        assert assignment.per_device == [[], [], []]
        assert assignment.makespan == 0.0
        assert assignment.imbalance() == 1.0

    def test_empty_assignment_properties(self):
        empty = Assignment(per_device=[], predicted_loads=[])
        assert empty.makespan == 0.0
        assert empty.imbalance() == 1.0


class TestOneDevice:
    @pytest.mark.parametrize("policy", [round_robin, greedy_by_cost])
    def test_single_device_gets_everything(self, policy):
        specs = [_spec(i, 100 * (i + 1)) for i in range(5)]
        assignment = policy(specs, 1)
        assert assignment.num_devices == 1
        assert len(assignment.per_device[0]) == 5
        # One bin is trivially perfectly balanced.
        assert assignment.imbalance() == 1.0
        assert assignment.makespan == pytest.approx(
            sum(default_cost(s) for s in specs)
        )


class TestSkewedBudgets:
    def test_greedy_isolates_the_giant_trajectory(self):
        # One 10**7-shot giant and ten small trajectories on two devices:
        # LPT must put the giant alone and pack the rest together.
        giant = _spec(0, 10**7)
        small = [_spec(i, 10) for i in range(1, 11)]
        assignment = greedy_by_cost([giant] + small, 2)
        sizes = sorted(len(bin_) for bin_ in assignment.per_device)
        assert sizes == [1, 10]
        giant_bin = min(assignment.per_device, key=len)
        assert giant_bin[0].num_shots == 10**7

    def test_greedy_imbalance_bounds(self):
        giant = _spec(0, 10**7)
        small = [_spec(i, 10) for i in range(1, 11)]
        greedy = greedy_by_cost([giant] + small, 2)
        naive = round_robin([giant] + small, 2)
        # imbalance is max/mean: always >= 1, and the giant dominates both
        # schedules so neither can beat max_cost/mean — but greedy must be
        # no worse than dealing in order.
        assert 1.0 <= greedy.imbalance() <= naive.imbalance()
        assert greedy.makespan <= naive.makespan
        # LPT's 4/3 guarantee against the trivial lower bound
        # max(largest item, total/m).
        costs = [default_cost(s) for s in [giant] + small]
        lower = max(max(costs), sum(costs) / 2)
        assert greedy.makespan <= (4 / 3) * lower

    def test_lpt_beats_round_robin_on_alternating_skew(self):
        # Costs alternate big/small so round robin stacks all the bigs on
        # one device; LPT balances them.
        shots = [10**6, 10, 10**6, 10, 10**6, 10]
        specs = [_spec(i, s) for i, s in enumerate(shots)]
        greedy = greedy_by_cost(specs, 2)
        naive = round_robin(specs, 2)
        assert greedy.makespan < naive.makespan
        assert greedy.imbalance() < naive.imbalance()

    def test_scheduler_policy_validation(self):
        with pytest.raises(ExecutionError):
            Scheduler("best-fit-decreasing")
        with pytest.raises(ExecutionError):
            round_robin([_spec(0, 1)], 0)
        with pytest.raises(ExecutionError):
            greedy_by_cost([_spec(0, 1)], -1)


class TestGroupCosts:
    def test_default_cost_accepts_groups(self):
        specs = [_spec(0, 100, [_event(0, 1)]), _spec(1, 50, [_event(0, 1)])]
        (group,) = deduplicate_specs(specs)
        # A group costs one preparation plus its *merged* budget.
        assert default_cost(group) == pytest.approx(1.0 + 1e-4 * 150)

    def test_greedy_bins_groups(self):
        specs = [
            _spec(0, 1000, [_event(0, 1)]),
            _spec(1, 1000, [_event(0, 1)]),
            _spec(2, 10, [_event(0, 2)]),
            _spec(3, 10, [_event(1, 1)]),
        ]
        groups = deduplicate_specs(specs)
        assignment = greedy_by_cost(groups, 2)
        # The merged heavy group lands alone; the two light groups share.
        sizes = sorted(len(bin_) for bin_ in assignment.per_device)
        assert sizes == [1, 2]


class TestDedupMergeOrderIndependence:
    def _random_specs(self, rng):
        signatures = [
            (),
            ((0, 1),),
            ((0, 2),),
            ((0, 1), (1, 1)),
            ((1, 2),),
        ]
        specs = []
        for tid in range(40):
            sig = signatures[rng.randrange(len(signatures))]
            events = [_event(site, kraus) for site, kraus in sig]
            specs.append(_spec(tid, rng.randrange(1, 500), events))
        return specs

    def test_total_shots_per_key_invariant_under_shuffle(self):
        rng = random.Random(99)
        specs = self._random_specs(rng)
        budgets = {
            g.key: g.total_shots for g in deduplicate_specs(specs)
        }
        for _ in range(5):
            shuffled = specs[:]
            rng.shuffle(shuffled)
            reshuffled = {
                g.key: g.total_shots for g in deduplicate_specs(shuffled)
            }
            assert reshuffled == budgets

    def test_groups_preserve_first_occurrence_order(self):
        specs = [
            _spec(0, 5, [_event(0, 2)]),
            _spec(1, 5),
            _spec(2, 5, [_event(0, 2)]),
            _spec(3, 5, [_event(1, 1)]),
        ]
        groups = deduplicate_specs(specs)
        assert [g.indices for g in groups] == [(0, 2), (1,), (3,)]
        # Indices within a group ascend (first-occurrence order).
        for g in groups:
            assert list(g.indices) == sorted(g.indices)
