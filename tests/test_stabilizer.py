"""CHP tableau backend: gate semantics, measurement, noise, vs statevector."""

import numpy as np
import pytest

from repro.backends.stabilizer import StabilizerBackend, pauli_from_unitary
from repro.backends.statevector import StatevectorBackend
from repro.channels.pauli import PauliString
from repro.channels.standard import amplitude_damping, depolarizing
from repro.circuits import Circuit, library
from repro.data.stats import empirical_distribution, total_variation_distance
from repro.errors import BackendError
from repro.rng import make_rng


class TestGateSemantics:
    @pytest.mark.parametrize("gate_name", ["h", "s", "sdg", "sx", "sxdg", "sy", "sydg"])
    def test_single_qubit_cliffords_match_statevector(self, gate_name):
        """Tableau conjugation must match dense simulation on all of a
        tomographically complete set of states."""
        from repro.circuits.gates import gate_by_name

        for prep in ([], ["h"], ["h", "s"]):
            circ = Circuit(1)
            for p in prep:
                getattr(circ, p)(0)
            getattr(circ, gate_name)(0)
            circ.measure_all()
            circ.freeze()
            sv = StatevectorBackend(1)
            sv.run_fixed(circ)
            st = StabilizerBackend(1)
            st.run(circ)
            sv_bits = sv.sample(4000, [0], make_rng(1))
            st_bits = st.sample(4000, [0], make_rng(2))
            assert abs(sv_bits.mean() - st_bits.mean()) < 0.05

    def test_clifford_circuit_distribution_matches_statevector(self):
        circ = (
            Circuit(4).h(0).cx(0, 1).s(1).cz(1, 2).sx(2).cx(2, 3).sy(3).swap(0, 3)
        )
        circ.measure_all().freeze()
        sv = StatevectorBackend(4)
        sv.run_fixed(circ)
        st = StabilizerBackend(4)
        st.run(circ)
        sv_dist = empirical_distribution(sv.sample(20000, range(4), make_rng(3)))
        st_dist = empirical_distribution(st.sample(20000, range(4), make_rng(4)))
        assert total_variation_distance(sv_dist, st_dist) < 0.03

    def test_non_clifford_rejected(self):
        st = StabilizerBackend(1)
        with pytest.raises(BackendError):
            st.apply_gate_by_name("t", [0])


class TestMeasurement:
    def test_deterministic_measurement(self):
        st = StabilizerBackend(2)
        st.xgate(1)
        out, was_random = st.measure(1)
        assert out == 1 and not was_random
        out, was_random = st.measure(0)
        assert out == 0 and not was_random

    def test_random_measurement_collapses(self):
        st = StabilizerBackend(1)
        st.h(0)
        out, was_random = st.measure(0, rng=make_rng(0))
        assert was_random
        again, was_random2 = st.measure(0, rng=make_rng(1))
        assert not was_random2 and again == out

    def test_forced_outcome(self):
        st = StabilizerBackend(1)
        st.h(0)
        out, _ = st.measure(0, force=1)
        assert out == 1

    def test_ghz_correlations(self):
        for seed in range(5):
            st = StabilizerBackend(3)
            st.h(0)
            st.cx(0, 1)
            st.cx(1, 2)
            outs, flags = st.measure_many([0, 1, 2], rng=make_rng(seed))
            assert flags == [True, False, False]
            assert outs[0] == outs[1] == outs[2]

    def test_measure_statistics(self):
        ones = 0
        st0 = StabilizerBackend(1)
        st0.h(0)
        rng = make_rng(5)
        for _ in range(400):
            work = st0.copy()
            out, _ = work.measure(0, rng=rng)
            ones += out
        assert abs(ones / 400 - 0.5) < 0.1


class TestStabilizerQueries:
    def test_expectation_pauli_on_bell(self):
        st = StabilizerBackend(2)
        st.h(0)
        st.cx(0, 1)
        assert st.expectation_pauli(PauliString.from_label("XX")) == 1
        assert st.expectation_pauli(PauliString.from_label("ZZ")) == 1
        assert st.expectation_pauli(PauliString.from_label("YY")) == -1
        assert st.expectation_pauli(PauliString.from_label("ZI")) == 0

    def test_expectation_after_x(self):
        st = StabilizerBackend(1)
        st.xgate(0)
        assert st.expectation_pauli(PauliString.from_label("Z")) == -1

    def test_generators_stabilize_statevector(self):
        """Cross-check: tableau generators have +1 expectation on the dense
        state produced by the same circuit."""
        circ = Circuit(3).h(0).cx(0, 1).s(1).cx(1, 2).sx(2)
        st = StabilizerBackend(3)
        sv = StatevectorBackend(3)
        for op in circ.coherent_ops:
            st.apply_gate_by_name(op.gate.name, op.qubits)
            sv.apply_gate(op.gate, op.qubits)
        for gen in st.stabilizer_generators():
            assert sv.expectation_pauli(gen) == pytest.approx(1.0, abs=1e-9)


class TestNoise:
    def test_pauli_mixture_sampling(self, rng):
        st = StabilizerBackend(1)
        idx = st.apply_pauli_mixture(depolarizing(0.5), [0], rng=rng)
        assert idx in (0, 1, 2, 3)

    def test_fixed_index(self):
        st = StabilizerBackend(1)
        st.apply_pauli_mixture(depolarizing(0.5), [0], index=1)  # X
        assert st.expectation_pauli(PauliString.from_label("Z")) == -1

    def test_non_pauli_channel_rejected(self, rng):
        st = StabilizerBackend(1)
        with pytest.raises(BackendError):
            st.apply_pauli_mixture(amplitude_damping(0.1), [0], rng=rng)

    def test_noisy_circuit_run_with_choices(self, noisy_ghz3):
        st = StabilizerBackend(3)
        st.run(noisy_ghz3, kraus_choices={0: 1})
        # X on qubit 0 after first CX: still a stabilizer state.
        outs, _ = st.measure_many([0, 1, 2], rng=make_rng(0))
        assert len(outs) == 3


class TestPauliRecognition:
    def test_recognizes_paulis(self):
        assert pauli_from_unitary(np.array([[0, 1], [1, 0]]), 1).label() == "X"
        y = np.array([[0, -1j], [1j, 0]])
        assert pauli_from_unitary(y, 1).label() == "Y"

    def test_recognizes_phased_pauli(self):
        z = 1j * np.diag([1, -1]).astype(complex)
        assert pauli_from_unitary(z, 1).label() == "Z"

    def test_rejects_non_pauli(self):
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        assert pauli_from_unitary(h, 1) is None
