"""Prebuilt circuits, moment scheduling, transpilation passes."""

import numpy as np
import pytest

from repro.backends.statevector import StatevectorBackend
from repro.channels import NoiseModel, depolarizing
from repro.circuits import Circuit, library
from repro.circuits.gates import CCX
from repro.circuits.moments import moment_index_of_ops, schedule_moments
from repro.circuits.transpile import count_ops, decompose_to_2q, merge_single_qubit_runs
from repro.errors import CircuitError
from repro.rng import make_rng


class TestLibrary:
    def test_ghz_state(self):
        sv = StatevectorBackend(4)
        sv.run_fixed(library.ghz(4).freeze())
        probs = sv.probabilities()
        assert probs[0] == pytest.approx(0.5, abs=1e-10)
        assert probs[-1] == pytest.approx(0.5, abs=1e-10)

    def test_qft_matches_dft_matrix(self):
        n = 3
        circ = library.qft(n)
        u = circ.unitary()
        dim = 2**n
        dft = np.array(
            [[np.exp(2j * np.pi * j * k / dim) for k in range(dim)] for j in range(dim)]
        ) / np.sqrt(dim)
        # Compare up to global phase.
        phase = u[0, 0] / dft[0, 0]
        assert np.allclose(u, phase * dft, atol=1e-9)

    def test_random_brickwork_deterministic_per_rng(self):
        a = library.random_brickwork(4, 3, rng=make_rng(5))
        b = library.random_brickwork(4, 3, rng=make_rng(5))
        assert len(a) == len(b)
        for opa, opb in zip(a.coherent_ops, b.coherent_ops):
            assert opa.gate.params == opb.gate.params

    def test_mirror_returns_to_zero(self):
        circ = library.mirror_benchmark(4, 3, rng=make_rng(6)).freeze()
        sv = StatevectorBackend(4)
        sv.run_fixed(circ)
        assert abs(sv.statevector[0]) == pytest.approx(1.0, abs=1e-8)

    def test_noisy_helper_freezes(self):
        model = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.01))
        noisy = library.noisy(library.ghz(3, measure=True), model)
        assert noisy.frozen
        assert noisy.num_noise_sites() == 4

    def test_negative_depth_rejected(self):
        with pytest.raises(CircuitError):
            library.random_brickwork(2, -1)


class TestMoments:
    def test_parallel_ops_share_moment(self):
        circ = Circuit(4).h(0).h(1).cx(0, 1).h(2)
        moments = schedule_moments(circ)
        assert len(moments) == 2
        assert len(moments[0]) == 3  # h0, h1, h2

    def test_dependencies_respected(self):
        circ = Circuit(2).h(0).cx(0, 1).h(1)
        idx = moment_index_of_ops(circ)
        assert idx[0] == 0 and idx[1] == 1 and idx[2] == 2

    def test_noise_ops_occupy_moments(self):
        circ = Circuit(1)
        circ.h(0)
        circ.attach(depolarizing(0.1), 0)
        circ.h(0)
        assert len(schedule_moments(circ)) == 3


class TestMergeSingleQubitRuns:
    def test_merges_adjacent_gates(self):
        circ = Circuit(1).h(0).s(0).h(0)
        fused = merge_single_qubit_runs(circ)
        assert fused.num_gates() == 1
        assert np.allclose(fused.unitary(), circ.unitary(), atol=1e-10)

    def test_noise_is_a_barrier(self):
        circ = Circuit(1)
        circ.h(0)
        circ.attach(depolarizing(0.1), 0)
        circ.h(0)
        fused = merge_single_qubit_runs(circ)
        assert fused.num_gates() == 2  # H | noise | H must not merge

    def test_two_qubit_gate_is_a_barrier(self):
        circ = Circuit(2).h(0).cx(0, 1).h(0)
        fused = merge_single_qubit_runs(circ)
        assert fused.num_gates() == 3

    def test_semantics_preserved_on_random_circuit(self):
        circ = library.random_brickwork(4, 3, rng=make_rng(7))
        fused = merge_single_qubit_runs(circ)
        assert fused.num_gates() < circ.num_gates()
        sv_a, sv_b = StatevectorBackend(4), StatevectorBackend(4)
        sv_a.run_fixed(circ.copy().freeze())
        sv_b.run_fixed(fused.freeze())
        assert abs(np.vdot(sv_a.statevector, sv_b.statevector)) == pytest.approx(1.0, abs=1e-9)


class TestDecompose:
    def test_toffoli_decomposition_exact(self):
        circ = Circuit(3).gate(CCX, 0, 1, 2)
        flat = decompose_to_2q(circ)
        assert max(len(op.qubits) for op in flat.coherent_ops) <= 2
        assert np.allclose(flat.unitary(), circ.unitary(), atol=1e-9)

    def test_non_ccx_wide_gate_rejected(self):
        from repro.circuits.gates import Gate

        wide = Gate("wide", np.eye(8), check=False)
        circ = Circuit(3).gate(wide, 0, 1, 2)
        with pytest.raises(CircuitError):
            decompose_to_2q(circ)

    def test_passthrough_for_2q_circuits(self, noisy_ghz3):
        flat = decompose_to_2q(noisy_ghz3)
        assert len(flat) == len(noisy_ghz3)


class TestCountOps:
    def test_histogram(self, noisy_ghz3):
        counts = count_ops(noisy_ghz3)
        assert counts["cx"] == 2
        assert counts["h"] == 1
        assert counts["depolarizing(0.05)"] == 4
