"""Vectorized trajectory-stacked execution: backend, dedup, equivalence."""

import numpy as np
import pytest

from repro.backends.batched_statevector import BatchedStatevectorBackend
from repro.backends.statevector import StatevectorBackend
from repro.channels.standard import amplitude_damping
from repro.circuits import Circuit
from repro.config import Config
from repro.errors import BackendError, CapacityError, ExecutionError
from repro.execution import (
    BackendSpec,
    BatchedExecutor,
    ParallelExecutor,
    VectorizedExecutor,
    run_ptsbe,
)
from repro.pts import ProbabilisticPTS, TrajectorySpec, deduplicate_specs
from repro.rng import StreamFactory, make_rng
from repro.trajectory.events import KrausEvent, TrajectoryRecord


def _spec(tid, shots, events=(), p=0.5):
    return TrajectorySpec(
        record=TrajectoryRecord(trajectory_id=tid, events=tuple(events), nominal_probability=p),
        num_shots=shots,
    )


def _event(site, kraus, qubits=(0,), p=0.05):
    return KrausEvent(
        site_id=site, kraus_index=kraus, qubits=qubits, channel_name="ch", probability=p
    )


def _pts_specs(circuit, pts_seed, nsamples=300, nshots=400):
    """Real trajectory specs (with events/choices) from Algorithm 2."""
    return ProbabilisticPTS(nsamples=nsamples, nshots=nshots).sample(
        circuit, make_rng(pts_seed)
    ).specs


def _amp_damp_circuit():
    """One amplitude-damping site on |0>: Kraus 1 annihilates the state."""
    return Circuit(1).attach(amplitude_damping(0.1), 0).measure_all().freeze()


class TestBatchedStatevectorBackend:
    def test_stack_rows_match_serial_run_fixed(self, noisy_ghz3):
        """Each stacked row is bitwise identical to a serial preparation."""
        choices_list = [{}, {0: 1}, {1: 2}, {0: 1, 2: 3}]
        stacked = BatchedStatevectorBackend(3, batch_size=1)
        weights, alive = stacked.run_fixed_stack(noisy_ghz3, choices_list)
        serial = StatevectorBackend(3)
        for row, choices in enumerate(choices_list):
            w = serial.run_fixed(noisy_ghz3, choices)
            assert alive[row]
            assert weights[row] == pytest.approx(w)
            np.testing.assert_array_equal(stacked.statevector(row), serial.statevector)

    def test_sampling_matches_serial_stream_for_stream(self, noisy_ghz3):
        stacked = BatchedStatevectorBackend(3)
        stacked.run_fixed_stack(noisy_ghz3, [{}, {0: 1}])
        serial = StatevectorBackend(3)
        serial.run_fixed(noisy_ghz3, {0: 1})
        a = serial.sample(500, (0, 1, 2), make_rng(77))
        b = stacked.sample(1, 500, (0, 1, 2), make_rng(77))
        np.testing.assert_array_equal(a, b)

    def test_sample_stack_bulk(self, noisy_ghz3):
        stacked = BatchedStatevectorBackend(3)
        stacked.run_fixed_stack(noisy_ghz3, [{}, {0: 1}, {1: 1}])
        tables = stacked.sample_stack(
            [10, 20, 30], (0, 1, 2), StreamFactory(1).rngs_for([0, 1, 2])
        )
        assert [t.shape for t in tables] == [(10, 3), (20, 3), (30, 3)]

    def test_probability_stack_shape_and_norm(self, noisy_ghz3):
        stacked = BatchedStatevectorBackend(3)
        stacked.run_fixed_stack(noisy_ghz3, [{}, {0: 1}])
        probs = stacked.probability_stack()
        assert probs.shape == (2, 8)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_annihilated_branch_kills_row_only(self):
        circ = _amp_damp_circuit()
        stacked = BatchedStatevectorBackend(1)
        weights, alive = stacked.run_fixed_stack(circ, [{0: 1}, {}])
        assert not alive[0] and weights[0] == 0.0
        assert alive[1] and weights[1] == pytest.approx(1.0)
        np.testing.assert_array_equal(stacked.statevector(0), np.zeros(2))
        with pytest.raises(BackendError):
            stacked.probabilities(0)

    def test_apply_matrix_row_subset(self):
        stacked = BatchedStatevectorBackend(1, batch_size=3)
        x = np.array([[0.0, 1.0], [1.0, 0.0]])
        stacked.apply_matrix(x, [0], rows=[1])
        assert stacked.statevector(0)[0] == 1.0
        assert stacked.statevector(1)[1] == 1.0
        assert stacked.statevector(2)[0] == 1.0

    def test_duplicate_rows_touch_each_row_once(self):
        stacked = BatchedStatevectorBackend(1, batch_size=2)
        x = np.array([[0.0, 1.0], [1.0, 0.0]])
        stacked.apply_matrix(x, [0], rows=[1, 1])
        assert stacked.statevector(0)[0] == 1.0  # row 0 untouched
        assert stacked.statevector(1)[1] == 1.0

    def test_validations(self):
        stacked = BatchedStatevectorBackend(2, batch_size=2)
        with pytest.raises(BackendError):
            stacked.apply_matrix(np.eye(2), [5])
        with pytest.raises(BackendError):
            stacked.apply_matrix(np.eye(2), [0], rows=[-2, 0])
        with pytest.raises(BackendError):
            stacked.apply_matrix(np.eye(2), [0], rows=[2])
        with pytest.raises(BackendError):
            stacked.apply_matrix(np.eye(4), [0])
        with pytest.raises(BackendError):
            stacked.apply_matrix(np.eye(4), [0, 0])
        with pytest.raises(BackendError):
            BatchedStatevectorBackend(0)

    def test_capacity_budget_counts_the_stack(self):
        cfg = Config(max_dense_qubits=4)
        backend = BatchedStatevectorBackend(3, config=cfg)
        assert backend.max_batch_rows == 2
        with pytest.raises(CapacityError):
            backend.reset(3)
        with pytest.raises(CapacityError):
            BatchedStatevectorBackend(5, config=cfg)

    def test_out_of_range_kraus_index(self, noisy_ghz3):
        stacked = BatchedStatevectorBackend(3)
        with pytest.raises(BackendError):
            stacked.run_fixed_stack(noisy_ghz3, [{0: 99}])


class TestDedup:
    def test_dedup_key_ignores_trajectory_id_and_shots(self):
        a = _spec(0, 100, [_event(0, 1)])
        b = _spec(9, 250, [_event(0, 1)])
        assert a.dedup_key() == b.dedup_key()

    def test_dedup_key_distinguishes_choices(self):
        assert _spec(0, 1, [_event(0, 1)]).dedup_key() != _spec(0, 1, [_event(0, 2)]).dedup_key()

    def test_groups_merge_shot_budgets_in_order(self):
        specs = [
            _spec(0, 100, [_event(0, 1)]),
            _spec(1, 50),
            _spec(2, 40, [_event(0, 1)]),
        ]
        groups = deduplicate_specs(specs)
        assert [(g.indices, g.total_shots) for g in groups] == [
            ((0, 2), 140),
            ((1,), 50),
        ]

    def test_executor_prepares_duplicates_once(self, noisy_ghz3):
        specs = [
            _spec(0, 30, [_event(0, 1, qubits=(0,))]),
            _spec(1, 20, [_event(0, 1, qubits=(0,))]),
            _spec(2, 10),
        ]
        result = VectorizedExecutor().execute(noisy_ghz3, specs, seed=3)
        assert result.unique_preparations == 2
        assert result.num_trajectories == 3
        assert [t.num_shots for t in result.trajectories] == [30, 20, 10]
        # Duplicate members keep their own provenance records and streams.
        assert [t.record.trajectory_id for t in result.trajectories] == [0, 1, 2]
        assert not np.array_equal(result.trajectories[0].bits[:20], result.trajectories[1].bits)

    def test_serial_executor_reports_no_dedup(self, noisy_ghz3):
        result = BatchedExecutor().execute(noisy_ghz3, [_spec(0, 10)], seed=0)
        assert result.unique_preparations is None


class TestVectorizedEquivalence:
    """The acceptance contract: seed-fixed shot tables + provenance match."""

    def _assert_equivalent(self, circuit, specs, seed):
        serial = BatchedExecutor().execute(circuit, specs, seed=seed)
        vectorized = VectorizedExecutor().execute(circuit, specs, seed=seed)
        a, b = serial.shot_table(), vectorized.shot_table()
        np.testing.assert_array_equal(a.bits, b.bits)
        np.testing.assert_array_equal(a.trajectory_ids, b.trajectory_ids)
        assert serial.records == vectorized.records
        np.testing.assert_allclose(
            [t.actual_weight for t in serial.trajectories],
            [t.actual_weight for t in vectorized.trajectories],
        )

    def test_unitary_mixture_channels(self, noisy_ghz3):
        self._assert_equivalent(noisy_ghz3, _pts_specs(noisy_ghz3, 3), seed=11)

    def test_general_channels(self, noisy_ghz3_general):
        self._assert_equivalent(noisy_ghz3_general, _pts_specs(noisy_ghz3_general, 5), seed=2)

    def test_mixed_noise_workload(self, mixed_noise_circuit):
        self._assert_equivalent(mixed_noise_circuit, _pts_specs(mixed_noise_circuit, 8), seed=6)

    def test_chunking_changes_nothing(self, noisy_ghz3):
        specs = _pts_specs(noisy_ghz3, 4)
        assert len(specs) > 3
        full = VectorizedExecutor().execute(noisy_ghz3, specs, seed=5)
        chunked = VectorizedExecutor(max_batch=2).execute(noisy_ghz3, specs, seed=5)
        np.testing.assert_array_equal(full.shot_table().bits, chunked.shot_table().bits)

    def test_annihilated_trajectory_matches_serial(self):
        circ = _amp_damp_circuit()
        specs = [
            _spec(0, 100, [_event(0, 1)]),  # K1 on |0> annihilates
            _spec(1, 100),
        ]
        serial = BatchedExecutor().execute(circ, specs, seed=4)
        vectorized = VectorizedExecutor().execute(circ, specs, seed=4)
        for s, v in zip(serial.trajectories, vectorized.trajectories):
            assert s.num_shots == v.num_shots
            assert s.actual_weight == pytest.approx(v.actual_weight)
            np.testing.assert_array_equal(s.bits, v.bits)

    def test_pooled_distribution_matches_exact(self, noisy_ghz3):
        from repro.backends.density_matrix import DensityMatrixBackend
        from repro.data.stats import total_variation_distance

        specs = _pts_specs(noisy_ghz3, 2, nsamples=400, nshots=4000)
        result = VectorizedExecutor().execute(noisy_ghz3, specs, seed=1)
        exact = DensityMatrixBackend(3).run(noisy_ghz3).probabilities()
        assert total_variation_distance(result.pooled_distribution(), exact) < 0.05

    def test_plain_statevector_spec_is_upgraded(self, noisy_ghz3):
        specs = _pts_specs(noisy_ghz3, 3)
        a = VectorizedExecutor(BackendSpec.statevector()).execute(noisy_ghz3, specs, seed=7)
        b = VectorizedExecutor(BackendSpec.batched_statevector()).execute(noisy_ghz3, specs, seed=7)
        np.testing.assert_array_equal(a.shot_table().bits, b.shot_table().bits)


class TestStrategyKnob:
    def test_auto_picks_vectorized_for_batched_kind(self, mixed_noise_circuit):
        # A non-Clifford circuit (t gate): the engine router declines
        # frames, so auto must resolve to the pre-router dense dispatch.
        sampler = ProbabilisticPTS(nsamples=100, nshots=200)
        serial = run_ptsbe(mixed_noise_circuit, sampler, seed=9, strategy="serial")
        auto = run_ptsbe(
            mixed_noise_circuit, sampler, BackendSpec.batched_statevector(), seed=9
        )
        explicit = run_ptsbe(mixed_noise_circuit, sampler, seed=9, strategy="vectorized")
        np.testing.assert_array_equal(serial.shot_table().bits, auto.shot_table().bits)
        np.testing.assert_array_equal(serial.shot_table().bits, explicit.shot_table().bits)
        assert auto.engine == "vectorized"
        assert auto.unique_preparations is not None
        assert serial.unique_preparations is None

    def test_parallel_strategy(self, noisy_ghz3):
        sampler = ProbabilisticPTS(nsamples=100, nshots=100)
        serial = run_ptsbe(noisy_ghz3, sampler, seed=9, strategy="serial")
        parallel = run_ptsbe(
            noisy_ghz3, sampler, seed=9, strategy="parallel",
            executor_kwargs={"num_workers": 2},
        )
        np.testing.assert_array_equal(serial.shot_table().bits, parallel.shot_table().bits)

    def test_unknown_strategy_rejected(self, noisy_ghz3):
        with pytest.raises(ExecutionError):
            run_ptsbe(noisy_ghz3, ProbabilisticPTS(nsamples=10, nshots=10), strategy="gpu")

    def test_executor_kwargs_forwarded(self, noisy_ghz3):
        result = run_ptsbe(
            noisy_ghz3, ProbabilisticPTS(nsamples=100, nshots=100), seed=3,
            strategy="vectorized", executor_kwargs={"max_batch": 1},
        )
        assert result.unique_preparations == result.num_trajectories


class TestGuards:
    def test_batched_executor_rejects_stacked_backend(self, noisy_ghz3):
        with pytest.raises(ExecutionError):
            BatchedExecutor(BackendSpec.batched_statevector()).execute(
                noisy_ghz3, [_spec(0, 10)], seed=0
            )

    def test_parallel_executor_rejects_stacked_backend(self):
        with pytest.raises(ExecutionError):
            ParallelExecutor(backend=BackendSpec.batched_statevector())

    def test_vectorized_rejects_mps(self):
        with pytest.raises(ExecutionError):
            VectorizedExecutor(BackendSpec.mps(max_bond=8))

    def test_vectorized_rejects_bad_factory(self, noisy_ghz3):
        with pytest.raises(ExecutionError):
            VectorizedExecutor(lambda n: StatevectorBackend(n)).execute(
                noisy_ghz3, [_spec(0, 10)], seed=0
            )

    def test_vectorized_requires_specs_and_measurements(self, noisy_ghz3):
        with pytest.raises(ExecutionError):
            VectorizedExecutor().execute(noisy_ghz3, [], seed=0)
        with pytest.raises(ExecutionError):
            VectorizedExecutor().execute(Circuit(1).h(0).freeze(), [_spec(0, 1)], seed=0)
        with pytest.raises(ExecutionError):
            VectorizedExecutor(max_batch=0)

    def test_vectorized_rejects_sample_kwargs(self):
        with pytest.raises(ExecutionError):
            VectorizedExecutor(sample_kwargs={"cache": True})

    def test_rngs_for_matches_rng_for(self):
        factory = StreamFactory(42)
        batch = factory.rngs_for([0, 3])
        assert batch[0].random(4).tolist() == factory.rng_for(0).random(4).tolist()
        assert batch[1].random(4).tolist() == factory.rng_for(3).random(4).tolist()
