"""Exact density-matrix backend: channels, marginals, purity."""

import numpy as np
import pytest

from repro.backends.density_matrix import DensityMatrixBackend
from repro.backends.statevector import StatevectorBackend
from repro.channels.standard import amplitude_damping, depolarizing, phase_damping
from repro.circuits import Circuit
from repro.circuits.gates import CX, H, X
from repro.errors import BackendError, CapacityError


class TestBasics:
    def test_initial_state(self):
        dm = DensityMatrixBackend(2)
        assert dm.density_matrix[0, 0] == pytest.approx(1.0)
        assert dm.purity() == pytest.approx(1.0)

    def test_capacity_guard(self):
        with pytest.raises(CapacityError):
            DensityMatrixBackend(20)

    def test_unitary_evolution_matches_statevector(self, rng):
        circ = Circuit(3).h(0).cx(0, 1).t(2).cz(1, 2)
        dm = DensityMatrixBackend(3)
        sv = StatevectorBackend(3)
        for op in circ.coherent_ops:
            dm.apply_gate(op.gate, op.qubits)
            sv.apply_gate(op.gate, op.qubits)
        expected = np.outer(sv.statevector, sv.statevector.conj())
        assert np.allclose(dm.density_matrix, expected, atol=1e-10)


class TestChannels:
    def test_depolarizing_reduces_purity(self):
        dm = DensityMatrixBackend(1)
        dm.apply_gate(H, [0])
        dm.apply_channel(depolarizing(0.3), [0])
        assert dm.purity() < 1.0

    def test_full_depolarizing_gives_maximally_mixed(self):
        dm = DensityMatrixBackend(1)
        dm.apply_gate(H, [0])
        # p = 3/4 sends any state to I/2.
        dm.apply_channel(depolarizing(0.75), [0])
        assert np.allclose(dm.density_matrix, np.eye(2) / 2, atol=1e-10)

    def test_amplitude_damping_fixed_point(self):
        dm = DensityMatrixBackend(1)
        dm.apply_gate(X, [0])
        for _ in range(60):
            dm.apply_channel(amplitude_damping(0.3), [0])
        # |1> decays to |0>.
        assert dm.density_matrix[0, 0].real == pytest.approx(1.0, abs=1e-6)

    def test_phase_damping_kills_coherence_keeps_populations(self):
        dm = DensityMatrixBackend(1)
        dm.apply_gate(H, [0])
        for _ in range(80):
            dm.apply_channel(phase_damping(0.3), [0])
        rho = dm.density_matrix
        assert abs(rho[0, 1]) < 1e-6
        assert rho[0, 0].real == pytest.approx(0.5, abs=1e-9)

    def test_channel_matches_kraus_sum_on_target(self):
        dm = DensityMatrixBackend(2)
        dm.apply_gate(H, [0])
        dm.apply_gate(CX, [0, 1])
        rho_before = dm.density_matrix.copy()
        ch = amplitude_damping(0.25)
        dm.apply_channel(ch, [1])
        from repro.linalg import embed_operator

        expected = sum(
            embed_operator(k, [1], 2) @ rho_before @ embed_operator(k, [1], 2).conj().T
            for k in ch.kraus_ops
        )
        assert np.allclose(dm.density_matrix, expected, atol=1e-10)

    def test_trace_preserved_through_noisy_run(self, noisy_ghz3):
        dm = DensityMatrixBackend(3).run(noisy_ghz3)
        assert np.trace(dm.density_matrix).real == pytest.approx(1.0, abs=1e-9)


class TestReadout:
    def test_probabilities_normalized(self, noisy_ghz3):
        probs = DensityMatrixBackend(3).run(noisy_ghz3).probabilities()
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)

    def test_ghz_symmetry(self, noisy_ghz3):
        probs = DensityMatrixBackend(3).run(noisy_ghz3).probabilities()
        # Depolarizing noise is symmetric under global bit flip for GHZ.
        assert probs[0b000] == pytest.approx(probs[0b111], abs=1e-9)

    def test_marginal_probabilities_order(self):
        dm = DensityMatrixBackend(2)
        dm.apply_gate(X, [0])
        marg = dm.marginal_probabilities([1, 0])
        # qubit1=0, qubit0=1 -> outcome (0,1) -> index 0b01
        assert marg[0b01] == pytest.approx(1.0)

    def test_marginal_sums_to_one(self, noisy_ghz3):
        dm = DensityMatrixBackend(3).run(noisy_ghz3)
        assert dm.marginal_probabilities([2, 0]).sum() == pytest.approx(1.0)

    def test_sampling_matches_probabilities(self, rng, noisy_ghz3):
        dm = DensityMatrixBackend(3).run(noisy_ghz3)
        bits = dm.sample(40000, [0, 1, 2], rng)
        keys = bits @ np.array([4, 2, 1])
        hist = np.bincount(keys, minlength=8) / 40000
        assert np.abs(hist - dm.probabilities()).max() < 0.02

    def test_fidelity_with_pure(self):
        dm = DensityMatrixBackend(1)
        dm.apply_gate(H, [0])
        plus = np.array([1, 1]) / np.sqrt(2)
        assert dm.fidelity_with_pure(plus) == pytest.approx(1.0)

    def test_expectation(self):
        dm = DensityMatrixBackend(1)
        dm.apply_gate(X, [0])
        z = np.diag([1.0, -1.0])
        assert dm.expectation(z).real == pytest.approx(-1.0)
