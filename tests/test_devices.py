"""Device layer: mesh, memory arithmetic, distributed statevector, perf model."""

import numpy as np
import pytest

from repro.backends.statevector import StatevectorBackend
from repro.circuits import library
from repro.devices import (
    DeviceMesh,
    DistributedStatevector,
    H100,
    PAPER_STATEVECTOR_TIMINGS,
    PAPER_TENSORNET_TIMINGS,
    PerfModel,
    density_matrix_bytes,
    min_devices_for_statevector,
    mps_bytes,
    statevector_bytes,
)
from repro.errors import DeviceError
from repro.rng import make_rng


class TestDeviceMesh:
    def test_power_of_two_required(self):
        with pytest.raises(DeviceError):
            DeviceMesh(3)

    def test_global_qubits(self):
        assert DeviceMesh(1).global_qubits == 0
        assert DeviceMesh(4).global_qubits == 2
        assert DeviceMesh(8).global_qubits == 3

    def test_h100_capacity(self):
        assert H100().memory_bytes == 80 * 10**9


class TestMemoryArithmetic:
    def test_statevector_bytes_paper_number(self):
        # 2**35 complex64 = 256 GB (the paper's 35-qubit footprint).
        assert statevector_bytes(35) == 2**35 * 8

    def test_min_devices_for_35_qubits_is_4(self):
        assert min_devices_for_statevector(35) == 4  # the paper's setup

    def test_min_devices_rounds_to_power_of_two(self):
        # 36 qubits = 512GB -> 6.4 devices -> 8.
        assert min_devices_for_statevector(36) == 8

    def test_density_matrix_wall(self):
        # Density matrix squares the footprint: 4**n.
        assert density_matrix_bytes(18) == statevector_bytes(36)

    def test_mps_linear_in_qubits(self):
        assert mps_bytes(100, 64) < statevector_bytes(40)
        assert mps_bytes(20, 8) < mps_bytes(40, 8)

    def test_invalid_inputs(self):
        with pytest.raises(DeviceError):
            statevector_bytes(0)
        with pytest.raises(DeviceError):
            mps_bytes(5, 0)


class TestDistributedStatevector:
    @pytest.mark.parametrize("num_devices", [1, 2, 4, 8])
    def test_bit_exact_vs_single_device(self, num_devices):
        circ = library.random_brickwork(6, 4, rng=make_rng(num_devices)).freeze()
        dist = DistributedStatevector(6, DeviceMesh(num_devices))
        dist.run_fixed(circ)
        ref = StatevectorBackend(6)
        ref.run_fixed(circ)
        assert np.allclose(dist.gather(), ref.statevector, atol=1e-12)

    def test_local_gates_need_no_communication(self):
        dist = DistributedStatevector(5, DeviceMesh(4))
        from repro.circuits.gates import H

        dist.apply_matrix(H.matrix, [3])  # local qubit (>= 2 global)
        dist.apply_matrix(H.matrix, [4])
        assert dist.bytes_communicated == 0

    def test_global_gates_count_communication(self):
        dist = DistributedStatevector(5, DeviceMesh(4))
        from repro.circuits.gates import H

        dist.apply_matrix(H.matrix, [0])  # global qubit
        assert dist.bytes_communicated > 0
        assert dist.exchange_count > 0

    def test_global_local_two_qubit_gate(self):
        from repro.circuits.gates import CX, H

        dist = DistributedStatevector(4, DeviceMesh(4))
        ref = StatevectorBackend(4)
        for backend in (dist, ref):
            backend.apply_matrix(H.matrix, [1])
            backend.apply_matrix(CX.matrix, [1, 3])  # control global, target local
        assert np.allclose(dist.gather(), ref.statevector, atol=1e-12)

    def test_both_global_two_qubit_gate(self):
        from repro.circuits.gates import CX, H

        dist = DistributedStatevector(4, DeviceMesh(4))
        ref = StatevectorBackend(4)
        for backend in (dist, ref):
            backend.apply_matrix(H.matrix, [0])
            backend.apply_matrix(CX.matrix, [0, 1])  # both global
        assert np.allclose(dist.gather(), ref.statevector, atol=1e-12)

    def test_sampling_matches_exact_distribution(self):
        circ = library.ghz(5, measure=True).freeze()
        dist = DistributedStatevector(5, DeviceMesh(4))
        dist.run_fixed(circ)
        bits = dist.sample(20000, range(5), make_rng(1))
        sums = bits.sum(axis=1)
        assert np.all((sums == 0) | (sums == 5))
        assert abs((sums == 0).mean() - 0.5) < 0.02

    def test_too_many_devices_rejected(self):
        with pytest.raises(DeviceError):
            DistributedStatevector(2, DeviceMesh(4))

    def test_noisy_run_fixed_renormalizes(self, noisy_ghz3):
        dist = DistributedStatevector(3, DeviceMesh(2))
        dist.run_fixed(noisy_ghz3, {0: 1})
        assert dist.norm_squared() == pytest.approx(1.0, abs=1e-9)


class TestPerfModel:
    def test_paper_sv_gpu_hours(self):
        model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
        hours = model.dataset_gpu_hours(10**12, 10**6)
        assert hours == pytest.approx(4445, rel=0.01)  # paper: 4,445

    def test_paper_tn_gpu_hours(self):
        model = PerfModel(PAPER_TENSORNET_TIMINGS)
        hours = model.dataset_gpu_hours(10**6, 100)
        assert hours == pytest.approx(2223, rel=0.01)  # paper: 2,223

    def test_sv_saturating_speedup_is_1e6(self):
        model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
        assert model.saturating_speedup() == pytest.approx(1e6, rel=0.01)

    def test_tn_speedup_at_1e3_exceeds_16(self):
        model = PerfModel(PAPER_TENSORNET_TIMINGS)
        assert model.speedup(1000) > 16  # paper: "over 16x"

    def test_speedup_monotone_in_batch(self):
        model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
        values = [model.speedup(m) for m in (1, 10, 100, 10**4, 10**6)]
        assert values == sorted(values)
        assert values[0] == pytest.approx(1.0)

    def test_speedup_near_linear_before_saturation(self):
        model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
        assert model.speedup(1000) == pytest.approx(1000, rel=0.01)

    def test_intra_trajectory_scaling_near_linear(self):
        t = PAPER_STATEVECTOR_TIMINGS
        assert t.prep_on(8) < t.prep_on(4) < t.prep_on(2)
        ratio = t.prep_on(4) / t.prep_on(8)
        assert 1.7 < ratio < 2.0  # "nearly linear" (Fig. 5 inset)

    def test_baseline_cost_is_linear_in_shots(self):
        model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
        assert model.baseline_seconds(200) == pytest.approx(2 * model.baseline_seconds(100))

    def test_gpu_hours_independent_of_grouping(self):
        """Embarrassing parallelism: GPU-hours don't depend on concurrency."""
        model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
        a = model.dataset_gpu_hours(10**9, 10**6, num_devices_per_trajectory=4)
        b = model.dataset_gpu_hours(10**9, 10**6, num_devices_per_trajectory=8)
        # More devices per trajectory costs slightly more GPU-hours due to
        # sub-linear strong scaling of prep (shots dominate here though).
        assert b == pytest.approx(a, rel=0.6)

    def test_invalid_inputs(self):
        model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
        with pytest.raises(DeviceError):
            model.speedup(0)
        with pytest.raises(DeviceError):
            model.dataset_gpu_hours(10, 0)
