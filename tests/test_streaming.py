"""Streaming shot delivery: chunk equivalence, replay seeds, clean abandonment."""

import multiprocessing
import time

import numpy as np
import pytest

from repro.channels import NoiseModel, depolarizing, two_qubit_depolarizing
from repro.circuits import Circuit
from repro.config import Config
from repro.errors import ExecutionError
from repro.execution import (
    BackendSpec,
    BatchedExecutor,
    ParallelExecutor,
    ShardedExecutor,
    ShotChunk,
    ShotTable,
    StreamedResult,
    VectorizedExecutor,
    run_ptsbe,
    run_ptsbe_stream,
)
from repro.execution.streaming import OrderedDelivery
from repro.pts import ProbabilisticPTS, TrajectorySpec
from repro.rng import make_rng
from repro.trajectory.events import TrajectoryRecord


def _pts_specs(circuit, pts_seed, nsamples=200, nshots=300):
    return ProbabilisticPTS(nsamples=nsamples, nshots=nshots).sample(
        circuit, make_rng(pts_seed)
    ).specs


def _spec(tid, shots):
    return TrajectorySpec(
        record=TrajectoryRecord(trajectory_id=tid, events=(), nominal_probability=1.0),
        num_shots=shots,
    )


@pytest.fixture(scope="module")
def brickwork():
    """Small brickwork workload exercising dedup, fusion, and 2q windows."""
    circ = Circuit(5)
    for layer in range(3):
        for q in range(5):
            circ.h(q) if layer % 2 == 0 else circ.t(q)
        for q in range(layer % 2, 4, 2):
            circ.cx(q, q + 1)
    circ.measure_all()
    model = (
        NoiseModel()
        .add_all_qubit_gate_noise("cx", two_qubit_depolarizing(0.02))
        .add_all_qubit_gate_noise("h", depolarizing(0.01))
    )
    return model.apply(circ).freeze()


def _executor(strategy, fusion):
    config = Config(fusion=fusion)
    if strategy == "serial":
        return BatchedExecutor(BackendSpec.statevector(config=config))
    if strategy == "parallel":
        return ParallelExecutor(BackendSpec.statevector(config=config), num_workers=2)
    if strategy == "vectorized":
        return VectorizedExecutor(
            BackendSpec.batched_statevector(config=config), max_batch=4
        )
    if strategy == "sharded":
        return ShardedExecutor(
            BackendSpec.batched_statevector(config=config), devices=2, max_batch=4
        )
    raise AssertionError(strategy)


STRATEGIES = ["serial", "parallel", "vectorized", "sharded"]


class TestStreamedEquivalence:
    """Acceptance matrix: all four strategies x fusion on/off."""

    @pytest.mark.parametrize("fusion", ["auto", "off"])
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_concat_chunks_bitwise_equal_materialized(
        self, brickwork, strategy, fusion
    ):
        specs = _pts_specs(brickwork, 11)
        materialized = _executor(strategy, fusion).execute(brickwork, specs, seed=21)
        stream = _executor(strategy, fusion).execute_stream(brickwork, specs, seed=21)
        chunks = list(stream)
        assert all(isinstance(c, ShotChunk) for c in chunks)
        concat = ShotTable.concatenate([c.shot_table() for c in chunks])
        reference = materialized.shot_table()
        np.testing.assert_array_equal(concat.bits, reference.bits)
        np.testing.assert_array_equal(concat.trajectory_ids, reference.trajectory_ids)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_finalize_reproduces_materialized_result(self, brickwork, strategy):
        specs = _pts_specs(brickwork, 5)
        materialized = _executor(strategy, "auto").execute(brickwork, specs, seed=8)
        finalized = _executor(strategy, "auto").execute_stream(
            brickwork, specs, seed=8
        ).finalize()
        np.testing.assert_array_equal(
            finalized.shot_table().bits, materialized.shot_table().bits
        )
        assert finalized.records == materialized.records
        np.testing.assert_array_equal(
            [t.actual_weight for t in finalized.trajectories],
            [t.actual_weight for t in materialized.trajectories],
        )
        assert finalized.unique_preparations == materialized.unique_preparations
        assert finalized.seed == materialized.seed == 8

    def test_finalize_after_partial_consumption(self, brickwork):
        specs = _pts_specs(brickwork, 3)
        materialized = BatchedExecutor().execute(brickwork, specs, seed=5)
        stream = BatchedExecutor().execute_stream(brickwork, specs, seed=5)
        first = next(stream)  # consume one chunk, then drain via finalize
        assert first.num_trajectories == 1
        result = stream.finalize()
        np.testing.assert_array_equal(
            result.shot_table().bits, materialized.shot_table().bits
        )

    def test_run_ptsbe_stream_matches_run_ptsbe(self, brickwork):
        sampler = lambda: ProbabilisticPTS(nsamples=80, nshots=100)
        materialized = run_ptsbe(brickwork, sampler(), seed=17, strategy="vectorized",
                                 backend=BackendSpec.batched_statevector())
        stream = run_ptsbe_stream(brickwork, sampler(), seed=17, strategy="vectorized",
                                  backend=BackendSpec.batched_statevector())
        concat = ShotTable.concatenate(list(stream.tables()))
        np.testing.assert_array_equal(concat.bits, materialized.shot_table().bits)

    def test_duplicate_specs_still_ordered(self, brickwork):
        """Dedup groups spanning chunk boundaries must not reorder specs."""
        base = _pts_specs(brickwork, 3)[:6]
        # Re-key duplicates of spec 0's choices at late trajectory ids.
        dup = TrajectorySpec(
            record=TrajectoryRecord(
                trajectory_id=base[-1].record.trajectory_id + 1,
                events=base[0].record.events,
                nominal_probability=base[0].record.nominal_probability,
            ),
            num_shots=40,
        )
        specs = base + [dup]
        materialized = VectorizedExecutor(max_batch=2).execute(brickwork, specs, seed=3)
        stream = VectorizedExecutor(max_batch=2).execute_stream(brickwork, specs, seed=3)
        concat = ShotTable.concatenate([c.shot_table() for c in stream])
        np.testing.assert_array_equal(concat.bits, materialized.shot_table().bits)
        np.testing.assert_array_equal(
            concat.trajectory_ids, materialized.shot_table().trajectory_ids
        )


class TestSeedResolution:
    """The seed=None reproducibility bugfix."""

    def test_run_ptsbe_records_resolved_seed(self, brickwork):
        result = run_ptsbe(brickwork, ProbabilisticPTS(nsamples=40, nshots=50))
        assert isinstance(result.seed, int)

    def test_unseeded_run_replays_bitwise(self, brickwork):
        first = run_ptsbe(brickwork, ProbabilisticPTS(nsamples=60, nshots=80))
        replay = run_ptsbe(
            brickwork, ProbabilisticPTS(nsamples=60, nshots=80), seed=first.seed
        )
        # Same PTS draw (same specs/records) AND same per-trajectory shots.
        assert first.records == replay.records
        np.testing.assert_array_equal(
            first.shot_table().bits, replay.shot_table().bits
        )
        assert replay.seed == first.seed

    @pytest.mark.parametrize("strategy,kwargs", [
        ("parallel", {"num_workers": 2}),
        ("sharded", {"devices": 2}),
    ])
    def test_unseeded_multiprocess_replay(self, brickwork, strategy, kwargs):
        """Regression: workers used to draw independent entropy on seed=None."""
        backend = (
            BackendSpec.batched_statevector()
            if strategy == "sharded"
            else BackendSpec()
        )
        first = run_ptsbe(
            brickwork,
            ProbabilisticPTS(nsamples=40, nshots=60),
            backend=backend,
            strategy=strategy,
            executor_kwargs=kwargs,
        )
        replay = run_ptsbe(
            brickwork,
            ProbabilisticPTS(nsamples=40, nshots=60),
            backend=backend,
            strategy=strategy,
            executor_kwargs=kwargs,
            seed=first.seed,
        )
        np.testing.assert_array_equal(
            first.shot_table().bits, replay.shot_table().bits
        )

    def test_seeded_runs_unchanged_by_resolution(self, brickwork):
        """Resolution is the identity for integer seeds (back-compat)."""
        a = run_ptsbe(brickwork, ProbabilisticPTS(nsamples=40, nshots=50), seed=7)
        b = run_ptsbe(brickwork, ProbabilisticPTS(nsamples=40, nshots=50), seed=7)
        assert a.seed == b.seed == 7
        np.testing.assert_array_equal(a.shot_table().bits, b.shot_table().bits)

    def test_executor_records_resolved_seed(self, brickwork):
        specs = _pts_specs(brickwork, 2)
        result = BatchedExecutor().execute(brickwork, specs)  # seed=None
        assert isinstance(result.seed, int)
        replay = BatchedExecutor().execute(brickwork, specs, seed=result.seed)
        np.testing.assert_array_equal(
            result.shot_table().bits, replay.shot_table().bits
        )

    def test_stream_exposes_seed_before_any_chunk(self, brickwork):
        stream = run_ptsbe_stream(brickwork, ProbabilisticPTS(nsamples=30, nshots=40))
        assert isinstance(stream.seed, int)  # available pre-consumption
        stream.close()

    def test_two_unseeded_runs_draw_different_seeds(self, brickwork):
        a = run_ptsbe(brickwork, ProbabilisticPTS(nsamples=20, nshots=30))
        b = run_ptsbe(brickwork, ProbabilisticPTS(nsamples=20, nshots=30))
        assert a.seed != b.seed  # 2**32 space; collision ~ never


def _assert_no_child_processes(timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    raise AssertionError(
        f"leaked worker processes: {multiprocessing.active_children()}"
    )


class TestAbandonment:
    """Mid-stream close() must leak neither processes nor buffers."""

    def test_serial_close_is_idempotent(self, brickwork):
        specs = _pts_specs(brickwork, 4)
        stream = BatchedExecutor().execute_stream(brickwork, specs, seed=1)
        next(stream)
        stream.close()
        stream.close()
        assert stream.closed
        with pytest.raises(StopIteration):
            next(stream)

    def test_finalize_after_close_raises(self, brickwork):
        specs = _pts_specs(brickwork, 4)
        stream = BatchedExecutor().execute_stream(brickwork, specs, seed=1)
        next(stream)
        stream.close()
        with pytest.raises(ExecutionError, match="closed"):
            stream.finalize()

    def test_vectorized_close_releases_backend(self, brickwork):
        specs = _pts_specs(brickwork, 4)
        captured = {}

        def factory(num_qubits):
            from repro.backends.batched_statevector import BatchedStatevectorBackend

            captured["backend"] = BatchedStatevectorBackend(num_qubits)
            return captured["backend"]

        stream = VectorizedExecutor(factory, max_batch=1).execute_stream(
            brickwork, specs, seed=2
        )
        next(stream)
        assert captured["backend"].batch_size > 0  # stack resident mid-run
        stream.close()
        assert captured["backend"].batch_size == 0  # released on abandonment

    def test_vectorized_close_before_first_chunk_releases(self, brickwork):
        """close() without consuming anything must still free the stack
        (the generator body never starts, so close() runs the release)."""
        specs = _pts_specs(brickwork, 4)
        captured = {}

        def factory(num_qubits):
            from repro.backends.batched_statevector import BatchedStatevectorBackend

            captured["backend"] = BatchedStatevectorBackend(num_qubits)
            return captured["backend"]

        stream = VectorizedExecutor(factory, max_batch=1).execute_stream(
            brickwork, specs, seed=2
        )
        assert captured["backend"].batch_size > 0  # allocated eagerly
        stream.close()
        assert captured["backend"].batch_size == 0

    def test_vectorized_full_drain_also_releases(self, brickwork):
        specs = _pts_specs(brickwork, 4)
        captured = {}

        def factory(num_qubits):
            from repro.backends.batched_statevector import BatchedStatevectorBackend

            captured["backend"] = BatchedStatevectorBackend(num_qubits)
            return captured["backend"]

        stream = VectorizedExecutor(factory).execute_stream(brickwork, specs, seed=2)
        stream.finalize()
        assert captured["backend"].batch_size == 0

    def test_parallel_close_leaves_no_processes(self, brickwork):
        specs = _pts_specs(brickwork, 8)
        stream = ParallelExecutor(num_workers=2).execute_stream(
            brickwork, specs, seed=3
        )
        next(stream)
        stream.close()
        _assert_no_child_processes()

    def test_sharded_pool_close_leaves_no_processes(self, brickwork):
        specs = _pts_specs(brickwork, 8)
        stream = ShardedExecutor(devices=2, num_workers=2).execute_stream(
            brickwork, specs, seed=3
        )
        next(stream)
        stream.close()
        _assert_no_child_processes()

    def test_context_manager_closes(self, brickwork):
        specs = _pts_specs(brickwork, 4)
        with ParallelExecutor(num_workers=2).execute_stream(
            brickwork, specs, seed=4
        ) as stream:
            next(stream)
        assert stream.closed
        _assert_no_child_processes()


class TestCloseIdempotency:
    """close() is a no-op the second time — and after finalize()."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_second_close_is_noop(self, brickwork, strategy):
        specs = _pts_specs(brickwork, 4)
        stream = _executor(strategy, "auto").execute_stream(brickwork, specs, seed=5)
        next(stream)
        stream.close()
        stream.close()
        stream.close()
        assert stream.closed

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_close_after_finalize_is_noop(self, brickwork, strategy):
        specs = _pts_specs(brickwork, 4)
        stream = _executor(strategy, "auto").execute_stream(brickwork, specs, seed=5)
        result = stream.finalize()
        stream.close()
        stream.close()
        assert stream.closed
        assert result.total_shots > 0

    def test_tensornet_and_clifford_close_idempotent(self, brickwork):
        stream = run_ptsbe_stream(
            brickwork, ProbabilisticPTS(nsamples=8, nshots=80), seed=6,
            strategy="tensornet",
        )
        next(stream)
        stream.close()
        stream.close()
        assert stream.closed
        ghz = Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
        noisy = (
            NoiseModel()
            .add_all_qubit_gate_noise("cx", depolarizing(0.05))
            .apply(ghz)
            .freeze()
        )
        stream = run_ptsbe_stream(
            noisy, ProbabilisticPTS(nsamples=8, nshots=80), seed=6,
            strategy="clifford",
        )
        stream.finalize()
        stream.close()
        stream.close()
        assert stream.closed

    def test_on_close_fires_exactly_once(self):
        calls = []

        def chunks():
            yield []

        stream = StreamedResult(
            chunks(), measured_qubits=(0,), seed=0, total_trajectories=0,
            on_close=lambda: calls.append(1),
        )
        stream.close()
        stream.close()
        assert calls == [1]

    def test_on_close_not_refired_after_exhaustion(self):
        # Once the generator is exhausted its own finally has released
        # every resource; close() must not re-touch freed buffers.
        calls = []

        def chunks():
            return iter(())

        stream = StreamedResult(
            chunks(), measured_qubits=(0,), seed=0, total_trajectories=0,
            on_close=lambda: calls.append(1),
        )
        stream.finalize()
        stream.close()
        stream.close()
        assert stream.closed
        assert calls == []


class TestRetention:
    """retain=False: pure-ingest streams drop chunks after delivery."""

    @pytest.mark.parametrize("strategy", ["serial", "vectorized", "sharded"])
    def test_chunks_identical_but_nothing_retained(self, brickwork, strategy):
        specs = _pts_specs(brickwork, 4)
        executor = _executor(strategy, "auto")
        retained = list(executor.execute_stream(brickwork, specs, seed=5))
        dropping = _executor(strategy, "auto").execute_stream(
            brickwork, specs, seed=5, retain=False
        )
        assert dropping.retain is False
        chunks = list(dropping)
        assert len(chunks) == len(retained)
        for a, b in zip(retained, chunks):
            np.testing.assert_array_equal(a.shot_table().bits, b.shot_table().bits)
        assert dropping.delivered_trajectories == len(specs)
        # Nothing was kept behind the scenes.
        assert dropping._collected == []

    def test_finalize_unavailable(self, brickwork):
        specs = _pts_specs(brickwork, 4)
        stream = BatchedExecutor().execute_stream(
            brickwork, specs, seed=6, retain=False
        )
        with pytest.raises(ExecutionError, match="retain=False"):
            stream.finalize()
        # Even after a full drain: the chunks are gone.
        for _ in stream:
            pass
        assert stream.delivered_trajectories == len(specs)
        with pytest.raises(ExecutionError, match="retain=False"):
            stream.finalize()

    def test_run_ptsbe_stream_threads_retain(self, brickwork):
        sampler = ProbabilisticPTS(nsamples=80, nshots=100)
        stream = run_ptsbe_stream(
            brickwork, sampler, seed=7, strategy="vectorized", retain=False
        )
        total = sum(chunk.num_trajectories for chunk in stream)
        assert total == stream.delivered_trajectories > 0
        with pytest.raises(ExecutionError, match="retain=False"):
            stream.finalize()

    def test_default_still_retains(self, brickwork):
        specs = _pts_specs(brickwork, 4)
        stream = BatchedExecutor().execute_stream(brickwork, specs, seed=8)
        assert stream.retain is True
        result = stream.finalize()
        assert result.total_shots > 0


class TestRetainFalseAbandonment:
    """retain=False streams must deliver identically, abandon cleanly
    mid-run on every strategy, and leave the sharded pool reusable."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_retain_false_stream_matches_materialized(self, brickwork, strategy):
        specs = _pts_specs(brickwork, 4)
        materialized = _executor(strategy, "auto").execute(brickwork, specs, seed=10)
        stream = _executor(strategy, "auto").execute_stream(
            brickwork, specs, seed=10, retain=False
        )
        concat = ShotTable.concatenate([c.shot_table() for c in stream])
        reference = materialized.shot_table()
        np.testing.assert_array_equal(concat.bits, reference.bits)
        np.testing.assert_array_equal(
            concat.trajectory_ids, reference.trajectory_ids
        )
        assert stream._collected == []

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_midstream_close_retain_false(self, brickwork, strategy):
        specs = _pts_specs(brickwork, 8)
        stream = _executor(strategy, "auto").execute_stream(
            brickwork, specs, seed=9, retain=False
        )
        first = next(stream)
        assert first.num_shots > 0
        stream.close()
        assert stream.closed
        with pytest.raises(StopIteration):
            next(stream)
        with pytest.raises(ExecutionError):
            stream.finalize()
        _assert_no_child_processes()

    def test_sharded_close_then_reopen_same_executor(self, brickwork):
        """An abandoned run must not poison the executor: the same sharded
        instance has to serve a fresh, complete, bitwise-correct run."""
        specs = _pts_specs(brickwork, 8)
        materialized = _executor("sharded", "auto").execute(brickwork, specs, seed=12)
        executor = _executor("sharded", "auto")
        stream = executor.execute_stream(brickwork, specs, seed=12, retain=False)
        next(stream)
        stream.close()
        _assert_no_child_processes()
        reopened = executor.execute_stream(brickwork, specs, seed=12)
        result = reopened.finalize()
        np.testing.assert_array_equal(
            result.shot_table().bits, materialized.shot_table().bits
        )
        _assert_no_child_processes()


class TestStreamingPrimitives:
    def test_ordered_delivery_reorders(self):
        t = [object() for _ in range(4)]
        delivery = OrderedDelivery(4)
        assert delivery.add([(2, t[2])]) == []
        assert delivery.add([(0, t[0])]) == [t[0]]
        assert delivery.add([(3, t[3]), (1, t[1])]) == [t[1], t[2], t[3]]
        assert delivery.outstanding == 0

    def test_ordered_delivery_rejects_duplicates_and_range(self):
        delivery = OrderedDelivery(2)
        delivery.add([(0, object())])
        with pytest.raises(ExecutionError, match="duplicate"):
            delivery.add([(0, object())])
        with pytest.raises(ExecutionError, match="out of range"):
            delivery.add([(5, object())])

    def test_shot_chunk_table(self, brickwork):
        stream = BatchedExecutor().execute_stream(
            brickwork, _pts_specs(brickwork, 2)[:1], seed=0
        )
        chunk = next(stream)
        table = chunk.shot_table()
        assert table.num_shots == chunk.num_shots
        assert table.measured_qubits == stream.measured_qubits
        assert repr(chunk).startswith("ShotChunk(")

    def test_empty_chunk_has_no_table(self):
        chunk = ShotChunk(trajectories=(), measured_qubits=(0,))
        with pytest.raises(ExecutionError, match="empty"):
            chunk.shot_table()

    def test_streamed_result_repr_tracks_state(self, brickwork):
        specs = _pts_specs(brickwork, 3)
        stream = BatchedExecutor().execute_stream(brickwork, specs, seed=0)
        assert "open" in repr(stream)
        next(stream)
        assert stream.delivered_trajectories == 1
        stream.close()
        assert "closed" in repr(stream)


class TestStreamedDecoderDataset:
    """The incremental decoder-training consumer (paper §2.3)."""

    @pytest.fixture(scope="class")
    def steane(self):
        from repro.circuits import Circuit as C
        from repro.circuits.operations import GateOp
        from repro.qec import steane_code, syndrome_extraction_circuit

        code = steane_code()
        circ, layout = syndrome_extraction_circuit(code, rounds=1)
        noisy = C(circ.num_qubits)
        injected = False
        for op in circ:
            if not injected and isinstance(op, GateOp) and op.qubits[0] >= code.n:
                for q in range(code.n):
                    noisy.attach(depolarizing(0.02), q)
                injected = True
            noisy.append(op)
        noisy.freeze()
        return code, noisy, layout

    def test_streamed_dataset_matches_materialized(self, steane):
        from repro.data.dataset import build_decoder_dataset

        code, circ, layout = steane
        sampler = lambda: ProbabilisticPTS(nsamples=150, nshots=40)
        materialized = build_decoder_dataset(
            run_ptsbe(circ, sampler(), seed=40), circ, code, layout
        )
        streamed = build_decoder_dataset(
            run_ptsbe_stream(circ, sampler(), seed=40), circ, code, layout
        )
        np.testing.assert_array_equal(streamed.features, materialized.features)
        np.testing.assert_array_equal(streamed.labels, materialized.labels)
        np.testing.assert_array_equal(
            streamed.trajectory_ids, materialized.trajectory_ids
        )
        assert streamed.records == materialized.records
        assert streamed.metadata == materialized.metadata

    def test_rejects_partially_consumed_stream(self, steane):
        from repro.data.dataset import build_decoder_dataset
        from repro.errors import DataError

        code, circ, layout = steane
        stream = run_ptsbe_stream(
            circ, ProbabilisticPTS(nsamples=50, nshots=20), seed=42
        )
        next(stream)  # consume a chunk before handing the stream over
        with pytest.raises(DataError, match="partially consumed"):
            build_decoder_dataset(stream, circ, code, layout)
        stream.close()

    def test_iter_decoder_batches_incremental(self, steane):
        from repro.data.dataset import iter_decoder_batches

        code, circ, layout = steane
        stream = run_ptsbe_stream(
            circ, ProbabilisticPTS(nsamples=100, nshots=30), seed=41
        )
        batches = list(iter_decoder_batches(stream, circ, code, layout))
        assert len(batches) > 1  # genuinely incremental, not one blob
        total = sum(features.shape[0] for features, _, _ in batches)
        assert total == stream.finalize().total_shots
        for features, labels, tids in batches:
            assert features.shape[0] == labels.shape[0] == tids.shape[0]
            assert features.shape[1] == layout.syndrome_bit_count()
            assert set(np.unique(labels)) <= {0, 1}
