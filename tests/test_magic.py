"""Magic-state distillation: exact protocol physics + benchmark circuits."""

import math

import numpy as np
import pytest

from repro.backends.statevector import StatevectorBackend
from repro.errors import QECError
from repro.qec import distill_5_to_1, steane_code
from repro.qec.color_codes import triangular_color_code
from repro.qec.magic import (
    MAGIC_BLOCH,
    bloch_from_expectations,
    magic_state_fidelity,
    magic_state_vector,
    msd_benchmark_circuit,
    msd_preparation_circuit,
    noisy_magic_state,
)


class TestMagicState:
    def test_bloch_vector(self):
        t = magic_state_vector()
        rho = np.outer(t, t.conj())
        x = np.real(np.trace(rho @ np.array([[0, 1], [1, 0]])))
        y = np.real(np.trace(rho @ np.array([[0, -1j], [1j, 0]])))
        z = np.real(np.trace(rho @ np.array([[1, 0], [0, -1]])))
        assert np.allclose([x, y, z], MAGIC_BLOCH, atol=1e-10)

    def test_noisy_state_trace_one(self):
        rho = noisy_magic_state(0.2)
        assert np.trace(rho).real == pytest.approx(1.0)

    def test_noisy_state_fidelity(self):
        t = magic_state_vector()
        for eps in (0.0, 0.1, 0.5):
            rho = noisy_magic_state(eps)
            assert np.vdot(t, rho @ t).real == pytest.approx(1 - eps, abs=1e-10)

    def test_fidelity_from_bloch(self):
        assert magic_state_fidelity(MAGIC_BLOCH) == pytest.approx(1.0)
        assert magic_state_fidelity(-MAGIC_BLOCH) == pytest.approx(0.0)

    def test_invalid_epsilon(self):
        with pytest.raises(QECError):
            noisy_magic_state(1.5)


class TestDistillationPhysics:
    """The Bravyi-Kitaev hallmarks — the repository's physics anchor."""

    def test_perfect_input_gives_perfect_output(self):
        out = distill_5_to_1(0.0)
        assert out.epsilon_out == pytest.approx(0.0, abs=1e-10)

    def test_quadratic_suppression_coefficient(self):
        # eps_out -> 5 eps**2 as eps -> 0.
        for eps in (0.005, 0.01, 0.02):
            ratio = distill_5_to_1(eps).suppression_ratio()
            assert ratio == pytest.approx(5.0, rel=0.15)

    def test_acceptance_approaches_one_sixth(self):
        assert distill_5_to_1(0.001).acceptance == pytest.approx(1 / 6, rel=0.02)

    def test_bravyi_kitaev_threshold(self):
        """Improvement below (1-sqrt(3/7))/2 ~ 0.1727, degradation above."""
        threshold = (1 - math.sqrt(3 / 7)) / 2
        below = distill_5_to_1(threshold - 0.01)
        above = distill_5_to_1(threshold + 0.01)
        assert below.epsilon_out < below.epsilon_in
        assert above.epsilon_out > above.epsilon_in

    def test_output_error_monotone_in_input(self):
        errs = [distill_5_to_1(e).epsilon_out for e in (0.01, 0.03, 0.05, 0.1)]
        assert errs == sorted(errs)

    def test_output_is_t_type_corner(self):
        out = distill_5_to_1(0.02)
        corner = np.array(out.target_corner)
        assert abs(np.linalg.norm(corner) - 1.0) < 1e-10
        assert np.allclose(np.abs(corner), 1 / math.sqrt(3), atol=1e-10)


class TestBenchmarkCircuits:
    def test_bare_circuit_shape(self):
        circ = msd_benchmark_circuit(None)
        assert circ.num_qubits == 5
        names = {op.gate.name for op in circ.coherent_ops}
        assert {"sx", "sy", "sxdg", "cz"} <= names

    def test_steane_encoded_is_35_qubits(self):
        circ = msd_benchmark_circuit(steane_code())
        assert circ.num_qubits == 35  # the paper's statevector workload

    def test_color5_prep_is_95_qubits(self):
        circ = msd_preparation_circuit(triangular_color_code(5))
        assert circ.num_qubits == 95  # stands in for the paper's 85

    def test_three_bases_differ_only_in_readout(self):
        z = msd_benchmark_circuit(None, basis="z")
        x = msd_benchmark_circuit(None, basis="x")
        y = msd_benchmark_circuit(None, basis="y")
        assert x.num_gates() == z.num_gates() + 1  # one H on the top wire
        assert y.num_gates() == z.num_gates() + 2  # sdg + h

    def test_invalid_basis(self):
        with pytest.raises(QECError):
            msd_benchmark_circuit(None, basis="w")

    def test_circuit_contains_non_clifford_prep(self):
        """The workload must be universal (why Stim can't run it)."""
        circ = msd_benchmark_circuit(None)
        names = [op.gate.name for op in circ.coherent_ops]
        assert "ry" in names and "rz" in names

    def test_three_basis_fidelity_of_unentangled_magic_wire(self):
        """Measure a bare magic state in 3 bases and reconstruct F ~ 1.

        Uses the preparation circuit of a single wire (no entangling
        gates), the measurement procedure of Fig. 3's caption.
        """
        from repro.circuits import Circuit
        from repro.rng import make_rng

        expectations = {}
        for basis in "xyz":
            circ = Circuit(1)
            beta = 0.5 * math.acos(1 / math.sqrt(3))
            circ.ry(2 * beta, 0).rz(math.pi / 4, 0)
            if basis == "x":
                circ.h(0)
            elif basis == "y":
                circ.sdg(0).h(0)
            circ.measure_all().freeze()
            sv = StatevectorBackend(1)
            sv.run_fixed(circ)
            bits = sv.sample(200_000, [0], make_rng(ord(basis)))
            expectations[basis] = 1.0 - 2.0 * bits.mean()
        bloch = bloch_from_expectations(
            expectations["x"], expectations["y"], expectations["z"]
        )
        assert magic_state_fidelity(bloch) == pytest.approx(1.0, abs=0.01)

    def test_encoded_magic_block_is_logical_magic_state(self):
        """One encoded block: stabilizers +1 and the *logical* Bloch vector
        equals the bare magic state's (encoder linearity carries the
        non-Clifford payload into the code space)."""
        from repro.channels.pauli import PauliString
        from repro.circuits import Circuit
        from repro.qec.encoding import css_encoding_circuit

        code = steane_code()
        encoder, info = css_encoding_circuit(code)
        circ = Circuit(code.n)
        beta = 0.5 * math.acos(1 / math.sqrt(3))
        circ.ry(2 * beta, info.data_qubits[0]).rz(math.pi / 4, info.data_qubits[0])
        circ.extend(encoder)
        circ.freeze()
        sv = StatevectorBackend(code.n)
        sv.run_fixed(circ)
        for stab in code.stabilizers():
            assert sv.expectation_pauli(stab) == pytest.approx(1.0, abs=1e-8)
        lx = PauliString(info.logical_x_rows[0], np.zeros(code.n, dtype=np.uint8))
        lz = PauliString(np.zeros(code.n, dtype=np.uint8), info.logical_z_rows[0])
        # Logical Y = i * Lx * Lz.
        ly = lx * lz
        ly = PauliString(ly.x, ly.z, (ly.phase + 1) % 4)
        bloch = np.array(
            [sv.expectation_pauli(lx), sv.expectation_pauli(ly), sv.expectation_pauli(lz)]
        )
        assert np.allclose(bloch, MAGIC_BLOCH, atol=1e-8)
