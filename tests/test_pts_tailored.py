"""Tailored PTS: Pauli twirling and correlated bursts; candidate filters."""

import numpy as np
import pytest

from repro.channels import NoiseModel, depolarizing
from repro.channels.standard import amplitude_damping
from repro.channels.unitary_mixture import is_unitary_mixture
from repro.circuits import Circuit, library
from repro.errors import SamplingError
from repro.pts import (
    CorrelatedNoisePTS,
    PauliTwirlPTS,
    ProbabilisticPTS,
    by_channel_name,
    by_gate_context,
    by_max_probability,
    by_min_probability,
    by_qubit_parity,
    by_qubits,
)
from repro.pts.base import NoiseSiteView
from repro.pts.tailored import twirl_circuit
from repro.rng import make_rng


@pytest.fixture
def amp_damp_circuit():
    ideal = library.ghz(3, measure=True)
    model = NoiseModel().add_all_qubit_gate_noise("cx", amplitude_damping(0.1))
    return model.apply(ideal).freeze()


class TestTwirl:
    def test_twirl_circuit_channels_become_mixtures(self, amp_damp_circuit):
        twirled = twirl_circuit(amp_damp_circuit)
        for site in twirled.noise_sites:
            assert is_unitary_mixture(site.channel)

    def test_twirl_preserves_structure(self, amp_damp_circuit):
        twirled = twirl_circuit(amp_damp_circuit)
        assert twirled.num_noise_sites() == amp_damp_circuit.num_noise_sites()
        assert twirled.num_gates() == amp_damp_circuit.num_gates()

    def test_sampler_exposes_twirled_circuit(self, amp_damp_circuit):
        sampler = PauliTwirlPTS(nsamples=100, nshots=10)
        result = sampler.sample(amp_damp_circuit, make_rng(0))
        assert sampler.twirled_circuit is not None
        assert result.num_trajectories > 0

    def test_twirled_pipeline_runs(self, amp_damp_circuit):
        from repro.execution import run_ptsbe

        sampler = PauliTwirlPTS(nsamples=150, nshots=200)
        result = run_ptsbe(amp_damp_circuit, sampler, seed=3)
        assert result.total_shots > 0


class TestCorrelatedBursts:
    def _circuit(self):
        ideal = library.ghz(5, measure=True)
        model = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.02))
        return model.apply(ideal).freeze()

    def test_bursts_are_spatially_local(self):
        circ = self._circuit()
        view = NoiseSiteView(circ)
        result = CorrelatedNoisePTS(num_bursts=200, radius=1, moment_window=1).sample(
            circ, make_rng(1)
        )
        assert result.num_trajectories > 0
        for spec in result.specs:
            qubits = sorted({q for e in spec.record.events for q in e.qubits})
            assert max(qubits) - min(qubits) <= 2 * 1 + 1

    def test_bursts_produce_multi_error_trajectories(self):
        circ = self._circuit()
        result = CorrelatedNoisePTS(
            num_bursts=300, radius=2, moment_window=2, burst_fire_probability=1.0
        ).sample(circ, make_rng(2))
        assert any(s.record.num_errors() >= 2 for s in result.specs)

    def test_burst_probability_validated(self):
        with pytest.raises(SamplingError):
            CorrelatedNoisePTS(num_bursts=1, burst_fire_probability=0.0)

    def test_no_candidates_rejected(self):
        circ = Circuit(2).h(0).measure_all().freeze()
        with pytest.raises(SamplingError):
            CorrelatedNoisePTS(num_bursts=5).sample(circ, make_rng(0))

    def test_deduplication(self):
        circ = self._circuit()
        result = CorrelatedNoisePTS(num_bursts=500, radius=1).sample(circ, make_rng(3))
        sigs = [s.record.signature() for s in result.specs]
        assert len(sigs) == len(set(sigs))


class TestFilters:
    def test_gate_context_filter(self, mixed_noise_circuit):
        view = NoiseSiteView(mixed_noise_circuit)
        f = by_gate_context("t")
        kept = [c for c in view.candidates if f(c)]
        assert kept and all(c.gate_context == "t" for c in kept)

    def test_channel_name_filter(self, mixed_noise_circuit):
        view = NoiseSiteView(mixed_noise_circuit)
        f = by_channel_name("bit_flip")
        kept = [c for c in view.candidates if f(c)]
        assert kept and all(c.channel_name.startswith("bit_flip") for c in kept)

    def test_parity_filter(self, mixed_noise_circuit):
        view = NoiseSiteView(mixed_noise_circuit)
        f = by_qubit_parity(0)
        assert all(c.qubits[0] % 2 == 0 for c in view.candidates if f(c))

    def test_probability_filters(self, mixed_noise_circuit):
        view = NoiseSiteView(mixed_noise_circuit)
        lo = by_min_probability(0.01)
        hi = by_max_probability(0.005)
        assert all(c.probability >= 0.01 for c in view.candidates if lo(c))
        assert all(c.probability <= 0.005 for c in view.candidates if hi(c))

    def test_composition(self, mixed_noise_circuit):
        view = NoiseSiteView(mixed_noise_circuit)
        f = by_gate_context("cx") & by_qubit_parity(1)
        for c in view.candidates:
            if f(c):
                assert c.gate_context == "cx" and c.qubits[0] % 2 == 1

    def test_negation(self, mixed_noise_circuit):
        view = NoiseSiteView(mixed_noise_circuit)
        f = ~by_gate_context("cx")
        assert all(c.gate_context != "cx" for c in view.candidates if f(c))

    def test_or_composition(self, mixed_noise_circuit):
        view = NoiseSiteView(mixed_noise_circuit)
        f = by_gate_context("t") | by_gate_context("cx")
        kept = [c for c in view.candidates if f(c)]
        assert all(c.gate_context in ("t", "cx") for c in kept)
