"""GF(2) linear algebra (+ hypothesis round-trips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import QECError
from repro.qec import gf2

gf2_matrix = arrays(np.uint8, (5, 7), elements=st.integers(0, 1))


class TestRREF:
    def test_identity_unchanged(self):
        eye = np.eye(3, dtype=np.uint8)
        red, pivots = gf2.rref(eye)
        assert np.array_equal(red, eye)
        assert pivots == [0, 1, 2]

    def test_dependent_rows_eliminated(self):
        m = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=np.uint8)
        red, pivots = gf2.rref(m)
        assert len(pivots) == 2
        assert not np.any(red[2])

    @given(gf2_matrix)
    @settings(max_examples=40, deadline=None)
    def test_rref_preserves_row_space(self, m):
        red, pivots = gf2.rref(m)
        # Every original row must be a combination of RREF rows and vice versa.
        assert gf2.rank(np.vstack([m, red])) == gf2.rank(m) == len(pivots)

    @given(gf2_matrix)
    @settings(max_examples=40, deadline=None)
    def test_pivot_columns_are_unit(self, m):
        red, pivots = gf2.rref(m)
        for r, c in enumerate(pivots):
            col = red[:, c]
            assert col[r] == 1 and col.sum() == 1


class TestNullspace:
    @given(gf2_matrix)
    @settings(max_examples=40, deadline=None)
    def test_nullspace_vectors_annihilate(self, m):
        ns = gf2.nullspace(m)
        if ns.shape[0]:
            assert not np.any((m @ ns.T) % 2)

    @given(gf2_matrix)
    @settings(max_examples=40, deadline=None)
    def test_rank_nullity(self, m):
        assert gf2.rank(m) + gf2.nullspace(m).shape[0] == m.shape[1]

    def test_full_rank_has_trivial_nullspace(self):
        assert gf2.nullspace(np.eye(4, dtype=np.uint8)).shape[0] == 0


class TestSolve:
    def test_solves_consistent_system(self):
        m = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        b = np.array([1, 0], dtype=np.uint8)
        x = gf2.solve(m, b)
        assert x is not None
        assert np.array_equal((m @ x) % 2, b)

    def test_detects_infeasible(self):
        m = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        assert gf2.solve(m, np.array([0, 1], dtype=np.uint8)) is None

    @given(gf2_matrix, arrays(np.uint8, 7, elements=st.integers(0, 1)))
    @settings(max_examples=40, deadline=None)
    def test_solution_verifies(self, m, x_true):
        b = (m @ x_true) % 2
        x = gf2.solve(m, b)
        assert x is not None
        assert np.array_equal((m @ x) % 2, b)

    def test_shape_mismatch(self):
        with pytest.raises(QECError):
            gf2.solve(np.eye(2, dtype=np.uint8), np.zeros(3, dtype=np.uint8))


class TestRowSpace:
    def test_membership(self):
        m = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        assert gf2.row_space_contains(m, np.array([1, 0, 1]))
        assert not gf2.row_space_contains(m, np.array([1, 0, 0]))

    def test_zero_always_member(self):
        m = np.array([[1, 0]], dtype=np.uint8)
        assert gf2.row_space_contains(m, np.zeros(2, dtype=np.uint8))
