"""Stabilizer codes: verification, logicals, distances, syndromes."""

import numpy as np
import pytest

from repro.channels.pauli import PauliString
from repro.errors import QECError
from repro.qec import gf2
from repro.qec.codes import CSSCode, repetition_code, rotated_surface_code, steane_code
from repro.qec.color_codes import color_code_layout, triangular_color_code
from repro.qec.five_qubit import FiveQubitCode


class TestCSSBasics:
    def test_noncommuting_checks_rejected(self):
        hx = np.array([[1, 0]], dtype=np.uint8)
        hz = np.array([[1, 0]], dtype=np.uint8)
        with pytest.raises(QECError):
            CSSCode(hx, hz)

    def test_logical_pair_anticommutes(self):
        code = steane_code()
        lx, lz = code.logical_x(), code.logical_z()
        assert not lx.commutes_with(lz)

    def test_logicals_commute_with_stabilizers(self):
        for code in (steane_code(), rotated_surface_code(3)):
            for stab in code.stabilizers():
                assert code.logical_x().commutes_with(stab)
                assert code.logical_z().commutes_with(stab)

    def test_logicals_not_in_stabilizer_group(self):
        code = steane_code()
        assert not gf2.row_space_contains(code.hx, code.logical_x_support())
        assert not gf2.row_space_contains(code.hz, code.logical_z_support())


class TestSteane:
    def test_parameters(self):
        code = steane_code()
        assert (code.n, code.k) == (7, 1)
        assert code.distance() == 3

    def test_weight_three_logicals_exist(self):
        assert steane_code().distance(max_weight=3) == 3

    def test_syndrome_of_single_errors_unique(self):
        """d=3: all weight-1 errors have distinct, nonzero syndromes."""
        code = steane_code()
        seen = set()
        for q in range(7):
            for kind in "XYZ":
                synd = code.syndrome_of(PauliString.single(7, q, kind)).tobytes()
                assert any(b for b in synd)
                assert synd not in seen
                seen.add(synd)

    def test_stabilizer_weights_are_four(self):
        code = steane_code()
        assert all(row.sum() == 4 for row in code.hx)


class TestColorCodes:
    def test_family_parameters(self):
        for d in (3, 5):
            code = triangular_color_code(d)
            assert code.n == (3 * d**2 + 1) // 4
            assert code.k == 1

    def test_d3_is_steane_sized(self):
        assert triangular_color_code(3).n == 7

    def test_d3_distance(self):
        assert triangular_color_code(3).distance() == 3

    @pytest.mark.slow
    def test_d5_distance_exactly_five(self):
        code = triangular_color_code(5)
        assert code.verify_distance_at_least(5)
        assert code.distance(max_weight=5) == 5

    def test_face_weights(self):
        _, faces = color_code_layout(5)
        weights = sorted(len(f) for f in faces)
        assert weights == [4, 4, 4, 4, 4, 4, 6, 6, 6]

    def test_self_dual(self):
        code = triangular_color_code(5)
        assert np.array_equal(code.hx, code.hz)

    def test_even_distance_rejected(self):
        with pytest.raises(QECError):
            triangular_color_code(4)


class TestSurfaceCodes:
    def test_d3_parameters(self):
        code = rotated_surface_code(3)
        assert (code.n, code.k) == (9, 1)
        assert code.distance() == 3

    @pytest.mark.slow
    def test_d5_parameters(self):
        code = rotated_surface_code(5)
        assert (code.n, code.k) == (25, 1)
        assert code.verify_distance_at_least(5)

    def test_even_d_rejected(self):
        with pytest.raises(QECError):
            rotated_surface_code(4)


class TestRepetition:
    def test_parameters(self):
        code = repetition_code(5)
        assert (code.n, code.k) == (5, 1)

    def test_distance_is_one(self):
        # Bit-flip code: a single Z is an undetected logical.
        assert repetition_code(5).distance() == 1

    def test_corrects_x_errors_syndromewise(self):
        code = repetition_code(5)
        syndromes = set()
        for q in range(5):
            s = code.syndrome_of(PauliString.single(5, q, "X")).tobytes()
            assert s not in syndromes
            syndromes.add(s)


class TestFiveQubit:
    def test_projector_rank_two(self):
        code = FiveQubitCode()
        assert np.linalg.matrix_rank(code.projector) == 2

    def test_projector_idempotent(self):
        p = FiveQubitCode().projector
        assert np.allclose(p @ p, p, atol=1e-10)

    def test_logical_basis_orthonormal(self):
        zero_l, one_l = FiveQubitCode().logical_basis
        assert abs(np.vdot(zero_l, zero_l) - 1) < 1e-10
        assert abs(np.vdot(one_l, one_l) - 1) < 1e-10
        assert abs(np.vdot(zero_l, one_l)) < 1e-10

    def test_codewords_stabilized(self):
        code = FiveQubitCode()
        zero_l, one_l = code.logical_basis
        for s in code.stabilizers:
            mat = s.to_matrix()
            assert np.allclose(mat @ zero_l, zero_l, atol=1e-10)
            assert np.allclose(mat @ one_l, one_l, atol=1e-10)

    def test_logical_state_superposition(self):
        code = FiveQubitCode()
        psi = code.logical_state(1 / np.sqrt(2), 1 / np.sqrt(2))
        xl = code.logical_x.to_matrix()
        assert abs(np.vdot(psi, xl @ psi) - 1.0) < 1e-10

    def test_decode_density_matrix_acceptance(self):
        code = FiveQubitCode()
        zero_l, _ = code.logical_basis
        rho = np.outer(zero_l, zero_l.conj())
        logical, acceptance = code.decode_density_matrix(rho)
        assert acceptance == pytest.approx(1.0)
        assert logical[0, 0].real == pytest.approx(1.0)
