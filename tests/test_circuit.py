"""Circuit IR: construction, freezing, composition, views."""

import numpy as np
import pytest

from repro.channels.standard import depolarizing, two_qubit_depolarizing
from repro.circuits import Circuit
from repro.circuits.gates import CX, H, X
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import CircuitError


class TestConstruction:
    def test_fluent_api_chains(self):
        circ = Circuit(2).h(0).cx(0, 1).measure_all()
        assert len(circ) == 3
        assert circ.num_gates() == 2

    def test_rejects_nonpositive_width(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_rejects_out_of_range_qubit(self):
        with pytest.raises(CircuitError):
            Circuit(2).h(2)

    def test_rejects_duplicate_qubits(self):
        with pytest.raises(CircuitError):
            Circuit(2).cx(1, 1)

    def test_gate_arity_mismatch(self):
        with pytest.raises(CircuitError):
            Circuit(2).gate(CX, 0)

    def test_channel_arity_mismatch(self):
        with pytest.raises(CircuitError):
            Circuit(2).attach(depolarizing(0.1), 0, 1)

    def test_sqrt_pauli_shorthands(self):
        circ = Circuit(1).sx(0).sy(0).sxdg(0).sydg(0)
        assert [op.gate.name for op in circ.coherent_ops] == ["sx", "sy", "sxdg", "sydg"]


class TestFreezing:
    def test_freeze_assigns_site_ids_in_program_order(self):
        circ = Circuit(2)
        circ.attach(depolarizing(0.1), 0)
        circ.h(0)
        circ.attach(depolarizing(0.1), 1)
        circ.freeze()
        assert [op.site_id for op in circ.noise_sites] == [0, 1]

    def test_freeze_is_idempotent(self):
        circ = Circuit(1).h(0)
        circ.freeze()
        circ.freeze()
        assert circ.frozen

    def test_frozen_circuit_rejects_mutation(self):
        circ = Circuit(1).h(0).freeze()
        with pytest.raises(CircuitError):
            circ.x(0)

    def test_noise_sites_requires_freeze(self):
        circ = Circuit(1)
        circ.attach(depolarizing(0.1), 0)
        with pytest.raises(CircuitError):
            _ = circ.noise_sites

    def test_copy_unfreezes(self):
        circ = Circuit(1).h(0).freeze()
        dup = circ.copy()
        assert not dup.frozen
        dup.x(0)  # mutable again
        assert len(dup) == 2
        assert len(circ) == 1


class TestViews:
    def test_coherent_noise_measure_partition(self, noisy_ghz3):
        total = len(noisy_ghz3)
        parts = (
            noisy_ghz3.num_gates()
            + noisy_ghz3.num_noise_sites()
            + len(noisy_ghz3.measurements)
        )
        assert total == parts

    def test_measured_qubits_in_order(self):
        circ = Circuit(3).measure(2, 0)
        assert circ.measured_qubits == (2, 0)

    def test_without_noise_strips_channels(self, noisy_ghz3):
        ideal = noisy_ghz3.without_noise()
        assert ideal.num_noise_sites() == 0
        assert ideal.num_gates() == noisy_ghz3.num_gates()

    def test_without_measurements(self, noisy_ghz3):
        stripped = noisy_ghz3.without_measurements()
        assert len(stripped.measurements) == 0

    def test_depth_parallel_gates(self):
        circ = Circuit(4).h(0).h(1).h(2).h(3).cx(0, 1).cx(2, 3)
        assert circ.depth() == 2


class TestComposition:
    def test_extend_with_map(self):
        inner = Circuit(2).h(0).cx(0, 1)
        outer = Circuit(4)
        outer.extend(inner, qubit_map=[2, 3])
        ops = outer.coherent_ops
        assert ops[0].qubits == (2,)
        assert ops[1].qubits == (2, 3)

    def test_extend_rejects_bad_map_length(self):
        with pytest.raises(CircuitError):
            Circuit(4).extend(Circuit(2).h(0), qubit_map=[0])

    def test_extend_carries_noise_and_measurements(self, noisy_ghz3):
        outer = Circuit(3)
        outer.extend(noisy_ghz3)
        outer.freeze()
        assert outer.num_noise_sites() == noisy_ghz3.num_noise_sites()
        assert len(outer.measurements) == len(noisy_ghz3.measurements)


class TestUnitary:
    def test_ghz_unitary(self):
        circ = Circuit(2).h(0).cx(0, 1)
        u = circ.unitary()
        state = u @ np.eye(4)[:, 0]
        expected = np.zeros(4, dtype=complex)
        expected[0b00] = expected[0b11] = 1 / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_unitary_is_unitary(self):
        circ = Circuit(3).h(0).cx(0, 1).t(2).cz(1, 2)
        u = circ.unitary()
        assert np.allclose(u @ u.conj().T, np.eye(8), atol=1e-10)
