"""Weighted estimators + the adaptive Neyman sampler extension."""

import numpy as np
import pytest

from repro.analysis.estimators import (
    Estimate,
    bit_observable,
    parity_observable,
    pooled_estimate,
    stratified_estimate,
)
from repro.backends.density_matrix import DensityMatrixBackend
from repro.errors import DataError, SamplingError
from repro.execution import run_ptsbe
from repro.pts import ExhaustivePTS, ProbabilisticPTS, ProportionalPTS
from repro.pts.adaptive import AdaptiveNeymanPTS
from repro.rng import make_rng


def _exact_bit_expectation(circuit, column):
    dm = DensityMatrixBackend(circuit.num_qubits).run(circuit)
    marg = dm.marginal_probabilities(list(circuit.measured_qubits))
    k = len(circuit.measured_qubits)
    keys = np.arange(len(marg))
    bit = (keys >> (k - 1 - column)) & 1
    return float((marg * bit).sum())


def _exact_parity(circuit):
    dm = DensityMatrixBackend(circuit.num_qubits).run(circuit)
    marg = dm.marginal_probabilities(list(circuit.measured_qubits))
    k = len(circuit.measured_qubits)
    keys = np.arange(len(marg))
    parity = np.array([bin(int(x)).count("1") % 2 for x in keys])
    return float((marg * (1 - 2 * parity)).sum())


class TestObservables:
    def test_bit_observable(self):
        bits = np.array([[0, 1], [1, 1]], dtype=np.uint8)
        assert np.allclose(bit_observable(1)(bits), [1.0, 1.0])
        assert np.allclose(bit_observable(0)(bits), [0.0, 1.0])

    def test_parity_observable(self):
        bits = np.array([[0, 0], [0, 1], [1, 1]], dtype=np.uint8)
        assert np.allclose(parity_observable()(bits), [1.0, -1.0, 1.0])
        assert np.allclose(parity_observable([1])(bits), [1.0, -1.0, -1.0])


class TestStratifiedEstimate:
    def test_matches_exact_with_uniform_shots(self, noisy_ghz3):
        """Uniform-shot Algorithm 2 is biased raw, exact when stratified."""
        exact = _exact_bit_expectation(noisy_ghz3, 0)
        result = run_ptsbe(noisy_ghz3, ProbabilisticPTS(nsamples=3000, nshots=4000), seed=1)
        strat = stratified_estimate(result, bit_observable(0))
        pooled = pooled_estimate(result, bit_observable(0))
        assert abs(strat.value - exact) < 4 * strat.std_error + 0.01
        assert abs(strat.value - exact) <= abs(pooled.value - exact) + 0.01

    def test_parity_estimate_with_exhaustive(self, noisy_ghz3):
        exact = _exact_parity(noisy_ghz3)
        result = run_ptsbe(noisy_ghz3, ExhaustivePTS(cutoff=1e-5, nshots=5000), seed=2)
        est = stratified_estimate(result, parity_observable())
        assert est.value == pytest.approx(exact, abs=4 * est.std_error + 0.01)

    def test_std_error_shrinks_with_shots(self, noisy_ghz3):
        small = run_ptsbe(noisy_ghz3, ExhaustivePTS(cutoff=1e-4, nshots=100), seed=3)
        large = run_ptsbe(noisy_ghz3, ExhaustivePTS(cutoff=1e-4, nshots=10_000), seed=3)
        se_small = stratified_estimate(small, parity_observable()).std_error
        se_large = stratified_estimate(large, parity_observable()).std_error
        assert se_large < se_small / 3

    def test_confidence_interval(self):
        est = Estimate(value=0.5, std_error=0.1, total_weight=1.0, num_strata=2)
        lo, hi = est.confidence_interval()
        assert lo == pytest.approx(0.304) and hi == pytest.approx(0.696)

    def test_actual_weights_for_general_channels(self, noisy_ghz3_general):
        exact = _exact_bit_expectation(noisy_ghz3_general, 0)
        result = run_ptsbe(
            noisy_ghz3_general, ProbabilisticPTS(nsamples=2000, nshots=3000), seed=4
        )
        est = stratified_estimate(result, bit_observable(0), use_actual_weights=True)
        assert est.value == pytest.approx(exact, abs=4 * est.std_error + 0.02)

    def test_pooled_correct_under_proportional(self, noisy_ghz3):
        exact = _exact_bit_expectation(noisy_ghz3, 0)
        result = run_ptsbe(noisy_ghz3, ProportionalPTS(total_shots=40_000, nsamples=2500), seed=5)
        est = pooled_estimate(result, bit_observable(0))
        assert est.value == pytest.approx(exact, abs=4 * est.std_error + 0.01)


class TestAdaptiveNeyman:
    def test_allocates_toward_variance(self, noisy_ghz3):
        """GHZ bit-0 under depolarizing: the ideal trajectory has maximal
        outcome variance (50/50), error trajectories vary; Neyman must give
        positive-variance strata the budget."""
        sampler = AdaptiveNeymanPTS(
            total_shots=20_000,
            observable=bit_observable(0),
            nsamples=1500,
            pilot_shots=64,
            seed=6,
        )
        result = sampler.sample(noisy_ghz3, make_rng(6))
        assert result.total_shots >= 20_000  # min_shots floor may add a few
        by_prob = result.sorted_by_probability()
        # The ideal trajectory (p ~ 0.81, sigma = 0.5) dominates allocation.
        assert by_prob[0].num_shots == max(s.num_shots for s in result.specs)

    def test_deterministic_observable_falls_back_to_proportional(self, noisy_ghz3):
        """An observable that is constant (always 1) has zero variance in
        every stratum; allocation must fall back to weights."""
        sampler = AdaptiveNeymanPTS(
            total_shots=1000,
            observable=lambda bits: np.ones(bits.shape[0]),
            nsamples=500,
            pilot_shots=16,
            seed=7,
        )
        result = sampler.sample(noisy_ghz3, make_rng(7))
        by_prob = result.sorted_by_probability()
        assert by_prob[0].num_shots == max(s.num_shots for s in result.specs)

    def test_estimate_accuracy_end_to_end(self, noisy_ghz3):
        exact = _exact_bit_expectation(noisy_ghz3, 0)
        sampler = AdaptiveNeymanPTS(
            total_shots=30_000, observable=bit_observable(0), nsamples=2000, seed=8
        )
        result_specs = sampler.sample(noisy_ghz3, make_rng(8))
        from repro.execution import BatchedExecutor

        result = BatchedExecutor().execute(noisy_ghz3, result_specs.specs, seed=8)
        est = stratified_estimate(result, bit_observable(0))
        assert est.value == pytest.approx(exact, abs=4 * est.std_error + 0.01)

    def test_parameter_validation(self):
        with pytest.raises(SamplingError):
            AdaptiveNeymanPTS(total_shots=0, observable=bit_observable(0))
        with pytest.raises(SamplingError):
            AdaptiveNeymanPTS(total_shots=10, observable=bit_observable(0), pilot_shots=1)

    def test_pilot_result_exposed(self, noisy_ghz3):
        sampler = AdaptiveNeymanPTS(
            total_shots=100, observable=bit_observable(0), nsamples=300, seed=9
        )
        sampler.sample(noisy_ghz3, make_rng(9))
        assert sampler.pilot_result is not None
        assert sampler.pilot_result.num_trajectories > 0
