"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Circuit, NoiseModel, depolarizing
from repro.channels.standard import amplitude_damping, bit_flip, two_qubit_depolarizing
from repro.rng import make_rng


@pytest.fixture
def rng() -> np.random.Generator:
    return make_rng(12345)


@pytest.fixture
def ghz3() -> Circuit:
    """Ideal 3-qubit GHZ circuit with measurement."""
    return Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()


@pytest.fixture
def noisy_ghz3(ghz3: Circuit) -> Circuit:
    """GHZ with 5% depolarizing after every CX (frozen)."""
    model = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.05))
    return model.apply(ghz3).freeze()


@pytest.fixture
def noisy_ghz3_general(ghz3: Circuit) -> Circuit:
    """GHZ with a *general* (non-unitary-mixture) channel per CX."""
    model = NoiseModel().add_all_qubit_gate_noise("cx", amplitude_damping(0.08))
    return model.apply(ghz3).freeze()


@pytest.fixture
def mixed_noise_circuit() -> Circuit:
    """4-qubit circuit mixing 1q/2q channels, prep and measurement noise."""
    ideal = Circuit(4)
    ideal.h(0).cx(0, 1).cx(1, 2).cx(2, 3).t(3).cx(2, 3).measure_all()
    model = (
        NoiseModel()
        .add_all_qubit_gate_noise("cx", two_qubit_depolarizing(0.03))
        .add_all_qubit_gate_noise("t", depolarizing(0.02))
        .add_preparation_noise(bit_flip(0.01))
        .add_measurement_noise(bit_flip(0.015))
    )
    return model.apply(ideal).freeze()
