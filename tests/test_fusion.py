"""Fusion pipeline: window scheduling, tier preservation, plan equivalence."""

import numpy as np
import pytest

from repro.backends.batched_statevector import BatchedStatevectorBackend
from repro.backends.statevector import StatevectorBackend
from repro.channels.standard import amplitude_damping
from repro.circuits import Circuit
from repro.circuits.moments import schedule_fusion_windows
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.config import Config
from repro.errors import BackendError, ExecutionError
from repro.execution import (
    BackendSpec,
    BatchedExecutor,
    ShardedExecutor,
    VectorizedExecutor,
)
from repro.execution.plan import (
    GateStep,
    NoiseStep,
    build_fused_plan,
    clear_plan_cache,
    get_fused_plan,
)
from repro.linalg.apply import compile_operator
from repro.linalg.fusion import expand_to_support, fuse_window_matrix, window_support
from repro.pts import ProbabilisticPTS
from repro.rng import make_rng

AUTO = Config(fusion="auto")
OFF = Config(fusion="off")


def _pts_specs(circuit, pts_seed, nsamples=300, nshots=400):
    return ProbabilisticPTS(nsamples=nsamples, nshots=nshots).sample(
        circuit, make_rng(pts_seed)
    ).specs


def _non_measure_ops(circuit):
    return [op for op in circuit if not isinstance(op, MeasureOp)]


class TestWindowScheduling:
    def test_single_qubit_run_merges(self):
        circ = Circuit(1).h(0).t(0).s(0).freeze()
        windows = schedule_fusion_windows(circ, max_qubits=1)
        assert len(windows) == 1
        assert [op.gate.name for op in windows[0]] == ["h", "t", "s"]

    def test_overlapping_windows_merge_under_cap(self):
        circ = Circuit(2).h(0).h(1).cx(0, 1).freeze()
        windows = schedule_fusion_windows(circ, max_qubits=2)
        assert len(windows) == 1
        assert len(windows[0]) == 3

    def test_window_cap_respected(self):
        circ = Circuit(4)
        for q in range(4):
            circ.h(q)
        circ.cx(0, 1).cx(2, 3).cx(1, 2).freeze()
        for cap in (1, 2, 3):
            for window in schedule_fusion_windows(circ, max_qubits=cap):
                support = window_support([op.qubits for op in window])
                # A single op wider than the cap is allowed (runs unfused).
                if len(window) > 1:
                    assert len(support) <= cap

    def test_wide_op_becomes_own_window(self):
        from repro.circuits.gates import CCX

        circ = Circuit(3).h(0).gate(CCX, 0, 1, 2).freeze()
        windows = schedule_fusion_windows(circ, max_qubits=2)
        wide = [w for w in windows if len(w[0].qubits) == 3]
        assert len(wide) == 1 and len(wide[0]) == 1

    def test_measurements_omitted_and_ops_covered(self, noisy_ghz3):
        windows = schedule_fusion_windows(noisy_ghz3, max_qubits=2)
        scheduled = [op for w in windows for op in w]
        assert all(not isinstance(op, MeasureOp) for op in scheduled)
        expected = _non_measure_ops(noisy_ghz3)
        assert len(scheduled) == len(expected)
        assert {id(op) for op in scheduled} == {id(op) for op in expected}

    def test_per_qubit_program_order_preserved(self, mixed_noise_circuit):
        windows = schedule_fusion_windows(mixed_noise_circuit, max_qubits=3)
        emission = [op for w in windows for op in w]
        program = _non_measure_ops(mixed_noise_circuit)
        for q in range(mixed_noise_circuit.num_qubits):
            emitted_q = [id(op) for op in emission if q in op.qubits]
            program_q = [id(op) for op in program if q in op.qubits]
            assert emitted_q == program_q

    def test_invalid_cap_rejected(self):
        circ = Circuit(1).h(0).freeze()
        with pytest.raises(ValueError):
            schedule_fusion_windows(circ, max_qubits=0)


class TestFusionMatrices:
    def test_expand_to_support_identity_padding(self):
        x = np.array([[0.0, 1.0], [1.0, 0.0]])
        expanded = expand_to_support(x, (2,), (0, 2))
        expected = np.kron(np.eye(2), x)
        np.testing.assert_allclose(expanded, expected)

    def test_expand_rejects_foreign_qubits(self):
        from repro.errors import GateError

        with pytest.raises(GateError):
            expand_to_support(np.eye(2), (3,), (0, 1))

    def test_fuse_window_matrix_application_order(self):
        # HX applied as X first then H: matrix must be H @ X.
        from repro.circuits.gates import H, X

        fused = fuse_window_matrix(
            [(X.matrix, (0,)), (H.matrix, (0,))], (0,)
        )
        np.testing.assert_allclose(fused, H.matrix @ X.matrix)

    def test_fused_diagonal_tier_preserved(self):
        # T then S are both diagonal; the fused operator must stay on the
        # diagonal fast path of the gate kernel.
        from repro.circuits.gates import S, T

        fused = fuse_window_matrix([(T.matrix, (0,)), (S.matrix, (0,))], (0,))
        op = compile_operator(fused, (0,), np.dtype(np.complex128))
        assert op.tier == "diagonal"

    def test_fused_identity_tier_detected(self):
        # Z then Z cancels exactly (entries are +-1): the compiled fused
        # operator is an exact identity, which the kernel skips entirely.
        from repro.circuits.gates import Z

        fused = fuse_window_matrix([(Z.matrix, (0,)), (Z.matrix, (0,))], (0,))
        op = compile_operator(fused, (0,), np.dtype(np.complex128))
        assert op.tier == "identity"

    def test_two_qubit_target_order_canonicalized(self):
        from repro.circuits.gates import CX

        a = compile_operator(CX.matrix, (1, 0), np.dtype(np.complex128))
        assert a.targets == (0, 1)
        # Descending targets mean control=1, target=0: |01> -> |11>.
        sv = StatevectorBackend(2)
        sv.apply_matrix(np.array([[0, 1], [1, 0]]), [1])  # |01>
        from repro.linalg.apply import apply_compiled_stack

        out = apply_compiled_stack(sv.statevector.reshape(1, -1), a, 2).reshape(-1)
        assert abs(out[0b11]) == pytest.approx(1.0)


class TestFusedPlanStructure:
    def test_off_is_one_step_per_op(self, noisy_ghz3):
        plan = build_fused_plan(noisy_ghz3, OFF)
        assert plan.num_steps == len(_non_measure_ops(noisy_ghz3))
        assert plan.num_noise_steps == noisy_ghz3.num_noise_sites()
        assert all(s.num_ops == 1 for s in plan.steps)

    def test_auto_compresses_steps(self, noisy_ghz3):
        fused = build_fused_plan(noisy_ghz3, AUTO)
        unfused = build_fused_plan(noisy_ghz3, OFF)
        assert fused.num_steps < unfused.num_steps
        assert fused.num_source_ops == unfused.num_source_ops

    def test_noise_sites_all_represented(self, mixed_noise_circuit):
        plan = build_fused_plan(mixed_noise_circuit, AUTO)
        sites = [s for step in plan.steps if isinstance(step, NoiseStep) for s in step.site_ids]
        assert sorted(sites) == [op.site_id for op in mixed_noise_circuit.noise_sites]

    def test_invalid_fusion_mode_rejected(self, noisy_ghz3):
        with pytest.raises(ExecutionError):
            build_fused_plan(noisy_ghz3, Config(fusion="aggressive"))
        with pytest.raises(ExecutionError):
            build_fused_plan(noisy_ghz3, Config(fusion_max_qubits=0))

    def test_requires_frozen_circuit(self):
        with pytest.raises(ExecutionError):
            build_fused_plan(Circuit(1).h(0), AUTO)

    def test_plan_cache_memoizes_per_config(self, noisy_ghz3):
        clear_plan_cache()
        a = get_fused_plan(noisy_ghz3, AUTO)
        b = get_fused_plan(noisy_ghz3, AUTO)
        assert a is b
        c = get_fused_plan(noisy_ghz3, Config(fusion="auto", fusion_max_qubits=2))
        assert c is not a
        d = get_fused_plan(noisy_ghz3, OFF)
        assert d is not a

    def test_variant_cache_amortizes_across_stacks(self, noisy_ghz3):
        clear_plan_cache()
        backend = BatchedStatevectorBackend(3)
        choices_list = [{}, {0: 1}, {}, {0: 1}]
        backend.run_fixed_stack(noisy_ghz3, choices_list)
        plan = get_fused_plan(noisy_ghz3, backend.config)
        misses_after_first = plan.variant_cache.misses
        assert misses_after_first > 0
        backend.run_fixed_stack(noisy_ghz3, choices_list)
        # Second stack hits only: every variant was compiled already.
        assert plan.variant_cache.misses == misses_after_first
        assert plan.variant_cache.hits > 0

    def test_out_of_range_kraus_index_rejected(self, noisy_ghz3):
        plan = get_fused_plan(noisy_ghz3, AUTO)
        step = next(s for s in plan.steps if isinstance(s, NoiseStep))
        with pytest.raises(BackendError):
            step.key_for({step.site_ids[0]: 99})


class TestWidthAwareAutoCap:
    """Config.fusion_max_qubits=None resolves the window cap per width."""

    def test_default_is_auto_resolved(self):
        assert Config().fusion_max_qubits is None

    def test_narrow_circuits_resolve_to_three(self):
        cfg = Config()
        for width in (1, 2, 5, 11):
            assert cfg.resolved_fusion_max_qubits(width) == 3

    def test_wide_circuits_resolve_to_four(self):
        cfg = Config()
        for width in (12, 18, 26):
            assert cfg.resolved_fusion_max_qubits(width) == 4

    def test_explicit_knob_always_overrides(self):
        cfg = Config(fusion_max_qubits=2)
        assert cfg.resolved_fusion_max_qubits(4) == 2
        assert cfg.resolved_fusion_max_qubits(20) == 2

    def test_plan_records_resolved_cap(self):
        from repro.channels import NoiseModel, depolarizing

        def noisy_line(width):
            circ = Circuit(width)
            for q in range(width):
                circ.h(q)
            circ.measure_all()
            model = NoiseModel().add_all_qubit_gate_noise("h", depolarizing(0.01))
            return model.apply(circ).freeze()

        narrow = build_fused_plan(noisy_line(4), Config(fusion="auto"))
        assert narrow.fusion_max_qubits == 3
        wide = build_fused_plan(noisy_line(12), Config(fusion="auto"))
        assert wide.fusion_max_qubits == 4
        pinned = build_fused_plan(
            noisy_line(12), Config(fusion="auto", fusion_max_qubits=3)
        )
        assert pinned.fusion_max_qubits == 3

    def test_wide_cap_actually_produces_wider_windows(self):
        """On a 12-qubit brickwork layer the auto cap of 4 must compress
        the plan further than an explicit cap of 3."""
        from repro.channels import NoiseModel, two_qubit_depolarizing

        circ = Circuit(12)
        for q in range(12):
            circ.h(q)
        for q in range(0, 11, 2):
            circ.cx(q, q + 1)
        for q in range(1, 10, 2):
            circ.cx(q, q + 1)
        circ.measure_all()
        model = NoiseModel().add_all_qubit_gate_noise(
            "cx", two_qubit_depolarizing(0.01)
        )
        frozen = model.apply(circ).freeze()
        auto = build_fused_plan(frozen, Config(fusion="auto"))
        capped3 = build_fused_plan(frozen, Config(fusion="auto", fusion_max_qubits=3))
        assert auto.fusion_max_qubits == 4
        assert auto.num_steps < capped3.num_steps

    def test_plan_cache_keys_on_resolved_cap(self, noisy_ghz3):
        clear_plan_cache()
        default = get_fused_plan(noisy_ghz3, Config(fusion="auto"))
        explicit3 = get_fused_plan(
            noisy_ghz3, Config(fusion="auto", fusion_max_qubits=3)
        )
        # Same resolved cap on a narrow circuit -> the very same plan.
        assert default is explicit3
        explicit2 = get_fused_plan(
            noisy_ghz3, Config(fusion="auto", fusion_max_qubits=2)
        )
        assert explicit2 is not default

    def test_auto_cap_keeps_strategies_bitwise(self):
        """Across the 12-qubit threshold (cap 4, GEMM-tier fused windows)
        serial and vectorized must stay bitwise identical."""
        from repro.channels import NoiseModel, two_qubit_depolarizing

        circ = Circuit(12)
        for q in range(12):
            circ.h(q)
        for q in range(0, 11, 2):
            circ.cx(q, q + 1)
        circ.measure_all()
        model = NoiseModel().add_all_qubit_gate_noise(
            "cx", two_qubit_depolarizing(0.02)
        )
        frozen = model.apply(circ).freeze()
        specs = _pts_specs(frozen, 1, nsamples=60, nshots=80)
        cfg = Config(fusion="auto")
        serial = BatchedExecutor(BackendSpec.statevector(config=cfg)).execute(
            frozen, specs, seed=3
        )
        vec = VectorizedExecutor(
            BackendSpec.batched_statevector(config=cfg)
        ).execute(frozen, specs, seed=3)
        np.testing.assert_array_equal(
            serial.shot_table().bits, vec.shot_table().bits
        )


@pytest.fixture(params=["noisy_ghz3", "noisy_ghz3_general", "mixed_noise_circuit"])
def workload(request):
    return request.getfixturevalue(request.param)


@pytest.fixture(params=["auto", "off"], ids=["fusion-auto", "fusion-off"])
def fusion_config(request):
    return Config(fusion=request.param)


class TestFusionEquivalence:
    """The acceptance matrix: fusion on/off x serial/vectorized/sharded."""

    def test_strategies_bitwise_identical(self, workload, fusion_config):
        specs = _pts_specs(workload, 3)
        serial = BatchedExecutor(
            BackendSpec.statevector(config=fusion_config)
        ).execute(workload, specs, seed=11)
        vectorized = VectorizedExecutor(
            BackendSpec.batched_statevector(config=fusion_config)
        ).execute(workload, specs, seed=11)
        sharded = ShardedExecutor(
            BackendSpec.batched_statevector(config=fusion_config), devices=3
        ).execute(workload, specs, seed=11)
        a = serial.shot_table()
        for other in (vectorized, sharded):
            b = other.shot_table()
            np.testing.assert_array_equal(a.bits, b.bits)
            np.testing.assert_array_equal(a.trajectory_ids, b.trajectory_ids)
            assert serial.records == other.records
            np.testing.assert_array_equal(
                [t.actual_weight for t in serial.trajectories],
                [t.actual_weight for t in other.trajectories],
            )

    def test_four_strategies_bitwise_identical(self, fusion_config, noisy_ghz3):
        """The full 4-strategy matrix (parallel included) on one workload:
        every engine must emit the same bits under the new kernels."""
        from repro.execution import ParallelExecutor

        specs = _pts_specs(noisy_ghz3, 6, nsamples=150, nshots=200)
        reference = BatchedExecutor(
            BackendSpec.statevector(config=fusion_config)
        ).execute(noisy_ghz3, specs, seed=17)
        others = [
            ParallelExecutor(
                BackendSpec.statevector(config=fusion_config), num_workers=2
            ),
            VectorizedExecutor(
                BackendSpec.batched_statevector(config=fusion_config)
            ),
            ShardedExecutor(
                BackendSpec.batched_statevector(config=fusion_config), devices=2
            ),
        ]
        a = reference.shot_table()
        for executor in others:
            b = executor.execute(noisy_ghz3, specs, seed=17).shot_table()
            np.testing.assert_array_equal(a.bits, b.bits)
            np.testing.assert_array_equal(a.trajectory_ids, b.trajectory_ids)

    def test_fused_matches_unfused_to_float_accuracy(self, workload):
        specs = _pts_specs(workload, 5)
        fused = VectorizedExecutor(
            BackendSpec.batched_statevector(config=AUTO)
        ).execute(workload, specs, seed=2)
        unfused = VectorizedExecutor(
            BackendSpec.batched_statevector(config=OFF)
        ).execute(workload, specs, seed=2)
        np.testing.assert_allclose(
            [t.actual_weight for t in fused.trajectories],
            [t.actual_weight for t in unfused.trajectories],
            rtol=1e-10,
        )
        np.testing.assert_allclose(
            fused.pooled_distribution(), unfused.pooled_distribution(), atol=1e-2
        )

    def test_fused_state_matches_unfused_state(self, workload, fusion_config):
        choices = {0: 1}
        sv = StatevectorBackend(workload.num_qubits, config=fusion_config)
        w = sv.run_fixed(workload, choices)
        ref = StatevectorBackend(workload.num_qubits, config=OFF)
        w_ref = ref.run_fixed(workload, choices)
        assert w == pytest.approx(w_ref, rel=1e-10)
        host = sv.array_backend.to_host
        np.testing.assert_allclose(
            host(sv.statevector), host(ref.statevector), atol=1e-12
        )

    def test_shot_tables_exact_across_window_caps(self, workload):
        """Same plan => exact shots; the cap changes the plan, so only the
        strategies sharing a cap must match bitwise."""
        specs = _pts_specs(workload, 7)
        for cap in (1, 2, 4):
            cfg = Config(fusion="auto", fusion_max_qubits=cap)
            serial = BatchedExecutor(BackendSpec.statevector(config=cfg)).execute(
                workload, specs, seed=5
            )
            vec = VectorizedExecutor(
                BackendSpec.batched_statevector(config=cfg)
            ).execute(workload, specs, seed=5)
            np.testing.assert_array_equal(
                serial.shot_table().bits, vec.shot_table().bits
            )

    def test_annihilated_trajectory_with_fusion(self, fusion_config):
        """A Kraus window that annihilates the state: zero weight, no shots,
        identical handling in serial and stacked execution."""
        from repro.pts.base import TrajectorySpec
        from repro.trajectory.events import KrausEvent, TrajectoryRecord

        circ = Circuit(1).attach(amplitude_damping(0.1), 0).measure_all().freeze()
        specs = [
            TrajectorySpec(
                record=TrajectoryRecord(
                    trajectory_id=0,
                    events=(
                        KrausEvent(
                            site_id=0, kraus_index=1, qubits=(0,),
                            channel_name="ad", probability=0.05,
                        ),
                    ),
                    nominal_probability=0.05,
                ),
                num_shots=50,
            ),
            TrajectorySpec(
                record=TrajectoryRecord(
                    trajectory_id=1, events=(), nominal_probability=0.95
                ),
                num_shots=50,
            ),
        ]
        serial = BatchedExecutor(
            BackendSpec.statevector(config=fusion_config)
        ).execute(circ, specs, seed=4)
        vec = VectorizedExecutor(
            BackendSpec.batched_statevector(config=fusion_config)
        ).execute(circ, specs, seed=4)
        assert serial.trajectories[0].actual_weight == 0.0
        assert serial.trajectories[0].bits.shape == (0, 1)
        for s, v in zip(serial.trajectories, vec.trajectories):
            assert s.actual_weight == pytest.approx(v.actual_weight)
            np.testing.assert_array_equal(s.bits, v.bits)


class TestStackWideSampling:
    def test_cumulative_stack_matches_serial_rows(self, noisy_ghz3):
        stacked = BatchedStatevectorBackend(3)
        stacked.run_fixed_stack(noisy_ghz3, [{}, {0: 1}, {1: 2}])
        cum = stacked.array_backend.to_host(stacked.cumulative_stack())
        assert cum.shape == (3, 8)
        for row, choices in enumerate([{}, {0: 1}, {1: 2}]):
            serial = StatevectorBackend(3)
            serial.run_fixed(noisy_ghz3, choices)
            expected = np.cumsum(serial.probabilities())
            expected[-1] = 1.0
            np.testing.assert_array_equal(cum[row], expected)

    def test_dead_row_sampling_raises(self):
        circ = Circuit(1).attach(amplitude_damping(0.1), 0).measure_all().freeze()
        stacked = BatchedStatevectorBackend(1)
        stacked.run_fixed_stack(circ, [{0: 1}, {}])
        with pytest.raises(BackendError):
            stacked.sample_indices(0, 10, make_rng(0))
        assert stacked.sample_indices(0, 0, make_rng(0)).shape == (0,)
        assert stacked.sample_indices(1, 10, make_rng(0)).shape == (10,)
