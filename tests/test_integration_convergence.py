"""Integration: every estimator converges to the exact noisy distribution.

The exactness chain of DESIGN.md §5: density matrix is ground truth;
the Algorithm-1 baseline, PTSBE with proportional shots, PTSBE's
probability-weighted pooled estimator, the MPS backend, and the
Pauli-frame sampler all must agree with it (within multinomial error).
"""

import numpy as np
import pytest

from repro.analysis.convergence import (
    convergence_curve,
    distribution_error,
    exact_distribution,
)
from repro.backends.pauli_frame import FrameSampler
from repro.data.stats import empirical_distribution, total_variation_distance
from repro.execution import BackendSpec, BatchedExecutor, run_ptsbe
from repro.pts import ExhaustivePTS, ProbabilisticPTS, ProportionalPTS
from repro.rng import make_rng
from repro.trajectory.baseline import TrajectorySimulator


class TestProportionalPTSBEExactness:
    def test_pooled_matches_density_matrix(self, noisy_ghz3):
        """Proportional PTS + BE pooled raw = exact distribution (up to the
        un-sampled tail, captured here by a generous trajectory set)."""
        exact = exact_distribution(noisy_ghz3)
        sampler = ProportionalPTS(total_shots=60_000, nsamples=3000)
        result = run_ptsbe(noisy_ghz3, sampler, seed=21)
        pooled = result.shot_table().empirical_distribution(len(exact))
        assert total_variation_distance(pooled, exact) < 0.02

    def test_weighted_pooling_fixes_uniform_shots(self, noisy_ghz3):
        """Algorithm 2's uniform-shot mode is deliberately biased; the
        probability-weighted pooled estimator corrects it."""
        exact = exact_distribution(noisy_ghz3)
        result = run_ptsbe(noisy_ghz3, ProbabilisticPTS(nsamples=3000, nshots=3000), seed=22)
        raw = result.shot_table().empirical_distribution(len(exact))
        weighted = result.pooled_distribution(weighted=True)
        assert total_variation_distance(weighted, exact) < total_variation_distance(raw, exact)
        assert total_variation_distance(weighted, exact) < 0.03

    def test_exhaustive_weighted_is_near_exact(self, noisy_ghz3):
        """Deterministic enumeration down to 1e-5 coverage leaves only the
        triple-error tail; the weighted estimator is then near-exact."""
        exact = exact_distribution(noisy_ghz3)
        # Pinned to the dense engine: the 0.015 threshold was calibrated
        # against its draws (auto now routes this Clifford circuit to the
        # frame engine, whose equally-valid draws differ per seed).
        result = run_ptsbe(
            noisy_ghz3, ExhaustivePTS(cutoff=1e-5, nshots=4000), seed=23,
            strategy="serial",
        )
        weighted = result.pooled_distribution(weighted=True)
        assert total_variation_distance(weighted, exact) < 0.015

    def test_general_channel_weighted_pooling(self, noisy_ghz3_general):
        """Amplitude damping: nominal probabilities are priors, but the
        trajectory states themselves are exact, so weighting by *actual*
        realized weights reproduces the distribution."""
        exact = exact_distribution(noisy_ghz3_general)
        result = run_ptsbe(
            noisy_ghz3_general, ProbabilisticPTS(nsamples=2000, nshots=4000), seed=24
        )
        # Re-pool with actual (state-dependent) weights from execution.
        dim = len(exact)
        out = np.zeros(dim)
        total = 0.0
        for t in result.trajectories:
            if t.num_shots == 0:
                continue
            hist = np.bincount(
                t.bits @ (1 << np.arange(t.bits.shape[1] - 1, -1, -1)), minlength=dim
            ).astype(float)
            out += t.actual_weight * hist / hist.sum()
            total += t.actual_weight
        out /= total
        assert total_variation_distance(out, exact) < 0.03


class TestBaselineEquivalence:
    def test_baseline_and_ptsbe_sample_same_distribution(self, mixed_noise_circuit):
        exact = exact_distribution(mixed_noise_circuit)
        base = TrajectorySimulator(
            lambda: BackendSpec().create(mixed_noise_circuit.num_qubits)
        ).sample(mixed_noise_circuit, 5000, seed=25)
        pts = run_ptsbe(
            mixed_noise_circuit, ProportionalPTS(total_shots=20_000, nsamples=2500), seed=26
        )
        err_base = distribution_error(base.bits, exact)
        err_pts = total_variation_distance(
            pts.shot_table().empirical_distribution(len(exact)), exact
        )
        assert err_base < 0.06
        assert err_pts < 0.04

    def test_convergence_curve_decays(self, noisy_ghz3):
        exact = exact_distribution(noisy_ghz3)

        def sampler(m):
            result = run_ptsbe(noisy_ghz3, ProportionalPTS(total_shots=m, nsamples=1500), seed=27)
            return result.shot_table().bits

        curve = convergence_curve(sampler, exact, [200, 2000, 50_000])
        errs = [e for _, e in curve]
        assert errs[-1] < errs[0]
        assert errs[-1] < 0.03


class TestMPSPipeline:
    def test_mps_backend_end_to_end(self, noisy_ghz3):
        exact = exact_distribution(noisy_ghz3)
        result = run_ptsbe(
            noisy_ghz3,
            ProportionalPTS(total_shots=30_000, nsamples=2000),
            backend=BackendSpec.mps(max_bond=16),
            seed=28,
        )
        pooled = result.shot_table().empirical_distribution(len(exact))
        assert total_variation_distance(pooled, exact) < 0.03

    def test_mps_naive_mode_same_distribution(self, noisy_ghz3):
        exact = exact_distribution(noisy_ghz3)
        result = run_ptsbe(
            noisy_ghz3,
            ProportionalPTS(total_shots=2000, nsamples=500),
            backend=BackendSpec.mps(max_bond=16),
            sample_kwargs={"mode": "naive"},
            seed=29,
        )
        pooled = result.shot_table().empirical_distribution(len(exact))
        assert total_variation_distance(pooled, exact) < 0.08


class TestFrameSamplerCrossCheck:
    def test_frame_sampler_agrees_with_ptsbe(self, noisy_ghz3):
        """Three estimators, one distribution: frames vs PTSBE vs exact."""
        exact = exact_distribution(noisy_ghz3)
        frame_bits = FrameSampler(noisy_ghz3).sample(60_000, make_rng(30))
        frame_dist = empirical_distribution(frame_bits, len(exact))
        ptsbe = run_ptsbe(noisy_ghz3, ExhaustivePTS(cutoff=1e-5, nshots=4000), seed=31)
        pts_dist = ptsbe.pooled_distribution(weighted=True)
        assert total_variation_distance(frame_dist, exact) < 0.02
        assert total_variation_distance(frame_dist, pts_dist) < 0.03
