"""Device-sharded stacked execution: equivalence, sizing, misuse guards."""

import numpy as np
import pytest

from repro.channels import NoiseModel, depolarizing, two_qubit_depolarizing
from repro.circuits import Circuit
from repro.devices import Device, DeviceMesh
from repro.errors import CapacityError, ExecutionError
from repro.execution import (
    BackendSpec,
    BatchedExecutor,
    Scheduler,
    ShardedExecutor,
    VALID_STRATEGIES,
    VectorizedExecutor,
    run_ptsbe,
)
from repro.pts import ProbabilisticPTS, TrajectorySpec, deduplicate_specs
from repro.rng import make_rng
from repro.trajectory.events import KrausEvent, TrajectoryRecord


def _spec(tid, shots, events=(), p=0.5):
    return TrajectorySpec(
        record=TrajectoryRecord(trajectory_id=tid, events=tuple(events), nominal_probability=p),
        num_shots=shots,
    )


def _event(site, kraus, qubits=(0,), p=0.05):
    return KrausEvent(
        site_id=site, kraus_index=kraus, qubits=qubits, channel_name="ch", probability=p
    )


def _pts_specs(circuit, pts_seed, nsamples=300, nshots=400):
    return ProbabilisticPTS(nsamples=nsamples, nshots=nshots).sample(
        circuit, make_rng(pts_seed)
    ).specs


@pytest.fixture(scope="module")
def brickwork():
    """The acceptance workload shape: layered CX brickwork with noise."""
    circ = Circuit(6)
    for layer in range(3):
        for q in range(6):
            circ.h(q) if layer % 2 == 0 else circ.t(q)
        for q in range(layer % 2, 5, 2):
            circ.cx(q, q + 1)
    circ.measure_all()
    model = (
        NoiseModel()
        .add_all_qubit_gate_noise("cx", two_qubit_depolarizing(0.02))
        .add_all_qubit_gate_noise("h", depolarizing(0.01))
    )
    return model.apply(circ).freeze()


class TestShardedEquivalence:
    """Acceptance: bitwise-identical ShotTables for every device/max_batch."""

    @pytest.mark.parametrize("num_devices", [1, 2, 3, 4])
    @pytest.mark.parametrize("max_batch", [None, 1, 2])
    def test_bitwise_identical_on_brickwork(self, brickwork, num_devices, max_batch):
        specs = _pts_specs(brickwork, 7)
        serial = BatchedExecutor().execute(brickwork, specs, seed=13)
        vectorized = VectorizedExecutor().execute(brickwork, specs, seed=13)
        sharded = ShardedExecutor(devices=num_devices, max_batch=max_batch).execute(
            brickwork, specs, seed=13
        )
        for reference in (serial, vectorized):
            a, b = reference.shot_table(), sharded.shot_table()
            np.testing.assert_array_equal(a.bits, b.bits)
            np.testing.assert_array_equal(a.trajectory_ids, b.trajectory_ids)
        assert sharded.records == serial.records
        np.testing.assert_allclose(
            [t.actual_weight for t in sharded.trajectories],
            [t.actual_weight for t in serial.trajectories],
        )

    def test_process_pool_matches_inline(self, noisy_ghz3):
        specs = _pts_specs(noisy_ghz3, 3, nsamples=150, nshots=200)
        inline = ShardedExecutor(devices=2).execute(noisy_ghz3, specs, seed=5)
        pooled = ShardedExecutor(devices=2, num_workers=2).execute(
            noisy_ghz3, specs, seed=5
        )
        np.testing.assert_array_equal(
            inline.shot_table().bits, pooled.shot_table().bits
        )
        np.testing.assert_array_equal(
            inline.shot_table().trajectory_ids, pooled.shot_table().trajectory_ids
        )

    def test_device_mesh_pool(self, noisy_ghz3):
        specs = _pts_specs(noisy_ghz3, 4)
        serial = BatchedExecutor().execute(noisy_ghz3, specs, seed=2)
        sharded = ShardedExecutor(devices=DeviceMesh(4)).execute(
            noisy_ghz3, specs, seed=2
        )
        np.testing.assert_array_equal(
            serial.shot_table().bits, sharded.shot_table().bits
        )

    def test_round_robin_scheduler_also_bitwise(self, noisy_ghz3):
        specs = _pts_specs(noisy_ghz3, 6)
        serial = BatchedExecutor().execute(noisy_ghz3, specs, seed=8)
        sharded = ShardedExecutor(
            devices=3, scheduler=Scheduler("round_robin")
        ).execute(noisy_ghz3, specs, seed=8)
        np.testing.assert_array_equal(
            serial.shot_table().bits, sharded.shot_table().bits
        )


class TestDedupAcrossShards:
    def test_groups_never_split_and_prepared_once(self, noisy_ghz3):
        specs = [
            _spec(0, 30, [_event(0, 1)]),
            _spec(1, 20, [_event(0, 1)]),
            _spec(2, 10),
            _spec(3, 40, [_event(1, 2, qubits=(0, 1))]),
        ]
        result = ShardedExecutor(devices=3).execute(noisy_ghz3, specs, seed=3)
        assert result.unique_preparations == len(deduplicate_specs(specs))
        assert [t.record.trajectory_id for t in result.trajectories] == [0, 1, 2, 3]
        assert [t.num_shots for t in result.trajectories] == [30, 20, 10, 40]

    def test_matches_vectorized_dedup_accounting(self, noisy_ghz3):
        specs = _pts_specs(noisy_ghz3, 9)
        vec = VectorizedExecutor().execute(noisy_ghz3, specs, seed=1)
        sharded = ShardedExecutor(devices=2).execute(noisy_ghz3, specs, seed=1)
        assert sharded.unique_preparations == vec.unique_preparations


class TestPerDeviceSizing:
    def test_memory_limited_device_still_bitwise(self, noisy_ghz3):
        specs = _pts_specs(noisy_ghz3, 3)
        serial = BatchedExecutor().execute(noisy_ghz3, specs, seed=6)
        # Room for one complex128 row of a 3-qubit state after the 2x
        # reshape-view workspace headroom (384 // (2 * 128) == 1).
        tiny = [Device(0, memory_bytes=3 * 8 * 16, name="tiny")]
        sharded = ShardedExecutor(devices=tiny).execute(noisy_ghz3, specs, seed=6)
        np.testing.assert_array_equal(
            serial.shot_table().bits, sharded.shot_table().bits
        )

    def test_device_too_small_for_one_row(self, noisy_ghz3):
        starved = [Device(0, memory_bytes=16, name="starved")]
        with pytest.raises(CapacityError, match="starved"):
            ShardedExecutor(devices=starved).execute(
                noisy_ghz3, [_spec(0, 10)], seed=0
            )

    def test_workspace_accounts_for_fused_gemm_transient(self):
        """Regression both ways: only k>=4 operators reach the
        moveaxis+GEMM path (~3x transient) now that 3-qubit windows run
        the dedicated k=3 reshape-view tier (~2x, a fresh output buffer).
        """
        from repro.config import Config
        from repro.devices.memory import statevector_bytes

        circ = Circuit(4)
        for q in range(4):
            circ.h(q)
        circ.cx(0, 1).cx(2, 3).cx(1, 2).measure_all()
        circ = (
            NoiseModel()
            .add_all_qubit_gate_noise("cx", two_qubit_depolarizing(0.02))
            .apply(circ)
            .freeze()
        )
        bytes_per_row = statevector_bytes(4, dtype=np.complex128)
        # Holds one row at the reshape-view 2x headroom, not the GEMM 3x.
        borderline = [Device(0, memory_bytes=2 * bytes_per_row, name="borderline")]
        # A window cap of 4 can produce k=4 fused operators: GEMM tier,
        # 3x headroom required -> the 2x device must refuse up front.
        wide = ShardedExecutor(
            BackendSpec.batched_statevector(
                config=Config(fusion="auto", fusion_max_qubits=4)
            ),
            devices=borderline,
        )
        with pytest.raises(CapacityError, match="borderline"):
            wide.execute(circ, [_spec(0, 10)], seed=0)
        # Capped at 3 (or unfused, or capped at 2) every operator fits the
        # reshape-view tiers: the 2x budget suffices and the run succeeds.
        for config in (
            Config(fusion="auto", fusion_max_qubits=3),
            Config(fusion="auto", fusion_max_qubits=2),
            Config(fusion="off"),
        ):
            narrow = ShardedExecutor(
                BackendSpec.batched_statevector(config=config),
                devices=borderline,
            )
            result = narrow.execute(circ, _pts_specs(circ, 3), seed=6)
            assert result.total_shots > 0

    def test_workspace_factor_clamped_to_circuit_width(self):
        """A 2-qubit circuit can never produce a 3-qubit fused window, so
        the default fused config must not charge it the GEMM headroom."""
        from repro.config import Config
        from repro.devices.memory import statevector_bytes

        circ = Circuit(2).h(0).cx(0, 1).measure_all()
        circ = (
            NoiseModel()
            .add_all_qubit_gate_noise("cx", two_qubit_depolarizing(0.02))
            .apply(circ)
            .freeze()
        )
        # Exactly one row at the 2x reshape-view headroom; the unclamped
        # factor (3x under the default fusion_max_qubits=3) would raise.
        snug = [
            Device(
                0,
                memory_bytes=2 * statevector_bytes(2, dtype=np.complex128),
                name="snug",
            )
        ]
        executor = ShardedExecutor(
            BackendSpec.batched_statevector(config=Config(fusion="auto")),
            devices=snug,
        )
        result = executor.execute(circ, [_spec(0, 25)], seed=1)
        assert result.total_shots == 25

    def test_workspace_accounts_for_native_wide_gates(self):
        """A native >=4-qubit gate hits the GEMM path even with fusion off,
        so the 3x headroom must apply regardless of the fusion config."""
        from repro.circuits.gates import CCX, controlled
        from repro.config import Config
        from repro.devices.memory import statevector_bytes

        cccx = controlled(CCX)  # 4-qubit gate: only the GEMM tier serves it
        circ = Circuit(4).h(0).gate(cccx, 0, 1, 2, 3).measure_all()
        circ = (
            NoiseModel()
            .add_all_qubit_gate_noise("h", depolarizing(0.01))
            .apply(circ)
            .freeze()
        )
        # Fits one row at the 2x headroom, not at the 3x GEMM transient.
        borderline = [
            Device(
                0,
                memory_bytes=2 * statevector_bytes(4, dtype=np.complex128),
                name="borderline",
            )
        ]
        executor = ShardedExecutor(
            BackendSpec.batched_statevector(config=Config(fusion="off")),
            devices=borderline,
        )
        with pytest.raises(CapacityError, match="borderline"):
            executor.execute(circ, [_spec(0, 10)], seed=0)

    def test_native_ccx_runs_in_view_tier_workspace(self):
        """Regression the other way: the native ccx used to be charged the
        3x GEMM headroom; the k=3 view tier runs it in 2x, so a device
        sized for exactly 2x one row must now succeed."""
        from repro.circuits.gates import CCX
        from repro.config import Config
        from repro.devices.memory import statevector_bytes

        circ = Circuit(3).h(0).gate(CCX, 0, 1, 2).measure_all()
        circ = (
            NoiseModel()
            .add_all_qubit_gate_noise("h", depolarizing(0.01))
            .apply(circ)
            .freeze()
        )
        snug = [
            Device(
                0,
                memory_bytes=2 * statevector_bytes(3, dtype=np.complex128),
                name="snug",
            )
        ]
        for config in (Config(fusion="off"), Config(fusion="auto")):
            executor = ShardedExecutor(
                BackendSpec.batched_statevector(config=config),
                devices=snug,
            )
            result = executor.execute(circ, [_spec(0, 25)], seed=1)
            assert result.total_shots == 25

    def test_heterogeneous_pool(self, noisy_ghz3):
        specs = _pts_specs(noisy_ghz3, 5)
        serial = BatchedExecutor().execute(noisy_ghz3, specs, seed=4)
        pool = [
            Device(0, memory_bytes=3 * 8 * 16, name="small"),
            Device(1, memory_bytes=80 * 10**9, name="big"),
        ]
        sharded = ShardedExecutor(devices=pool).execute(noisy_ghz3, specs, seed=4)
        np.testing.assert_array_equal(
            serial.shot_table().bits, sharded.shot_table().bits
        )


class TestMeasuredCostFeedback:
    """Config-gated refinement of the scheduler's cost constants."""

    def test_observed_timings_populate_after_a_run(self, noisy_ghz3):
        from repro.config import Config

        executor = ShardedExecutor(
            BackendSpec.batched_statevector(
                config=Config(measured_cost_feedback=True)
            ),
            devices=2,
        )
        assert executor.observed_timings() is None
        executor.execute(noisy_ghz3, _pts_specs(noisy_ghz3, 2), seed=1)
        measured = executor.observed_timings()
        assert measured is not None
        assert measured.prep_seconds > 0.0
        assert measured.shot_seconds > 0.0
        # The laptop-scale run is orders of magnitude cheaper than the
        # paper-calibrated 2 s/prep constant the analytic model assumes.
        assert measured.prep_seconds < executor.timings.prep_seconds

    def test_cost_function_switches_only_when_gated(self, noisy_ghz3):
        from repro.config import Config
        from repro.pts import deduplicate_specs

        specs = _pts_specs(noisy_ghz3, 2)
        group = deduplicate_specs(specs)[0]
        gated = ShardedExecutor(
            BackendSpec.batched_statevector(
                config=Config(measured_cost_feedback=True)
            ),
            devices=2,
        )
        ungated = ShardedExecutor(
            BackendSpec.batched_statevector(config=Config()), devices=2
        )
        analytic = ungated._group_cost(group)
        assert gated._group_cost(group) == analytic  # no data yet
        for executor in (gated, ungated):
            executor.execute(noisy_ghz3, specs, seed=2)
        # Gated executor now bins by its measured constants...
        assert gated._group_cost(group) != analytic
        assert gated._group_cost(group) == pytest.approx(
            gated.observed_timings().prep_seconds
            + group.total_shots * gated.observed_timings().shot_seconds
        )
        # ...while the ungated one sticks to the analytic perf model.
        assert ungated._group_cost(group) == analytic

    def test_feedback_run_stays_bitwise_identical(self, noisy_ghz3):
        from repro.config import Config

        specs = _pts_specs(noisy_ghz3, 5)
        serial = BatchedExecutor().execute(noisy_ghz3, specs, seed=4)
        executor = ShardedExecutor(
            BackendSpec.batched_statevector(
                config=Config(measured_cost_feedback=True)
            ),
            devices=3,
        )
        # Warm-up run records costs; the second run schedules from them.
        executor.execute(noisy_ghz3, specs, seed=4)
        refined = executor.execute(noisy_ghz3, specs, seed=4)
        np.testing.assert_array_equal(
            serial.shot_table().bits, refined.shot_table().bits
        )


class TestStrategyDispatch:
    def test_run_ptsbe_sharded_strategy(self, noisy_ghz3):
        sampler = ProbabilisticPTS(nsamples=120, nshots=150)
        serial = run_ptsbe(noisy_ghz3, sampler, seed=9, strategy="serial")
        sharded = run_ptsbe(
            noisy_ghz3, sampler, seed=9, strategy="sharded",
            executor_kwargs={"devices": 3},
        )
        np.testing.assert_array_equal(
            serial.shot_table().bits, sharded.shot_table().bits
        )
        assert sharded.unique_preparations is not None

    def test_unknown_strategy_lists_valid_names(self, noisy_ghz3):
        with pytest.raises(ExecutionError) as err:
            run_ptsbe(
                noisy_ghz3, ProbabilisticPTS(nsamples=10, nshots=10), strategy="gpu"
            )
        message = str(err.value)
        for name in VALID_STRATEGIES:
            assert repr(name) in message
        assert "sharded" in message

    def test_valid_strategies_constant(self):
        assert set(VALID_STRATEGIES) == {
            "auto", "serial", "parallel", "vectorized", "sharded", "clifford",
            "tensornet",
        }


class TestGuards:
    def test_rejects_nonpositive_devices(self):
        with pytest.raises(ExecutionError):
            ShardedExecutor(devices=0)
        with pytest.raises(ExecutionError):
            ShardedExecutor(devices=[])

    def test_rejects_mps_backend(self):
        with pytest.raises(ExecutionError):
            ShardedExecutor(BackendSpec.mps(max_bond=8))

    def test_rejects_bad_max_batch_and_workers(self):
        with pytest.raises(ExecutionError):
            ShardedExecutor(max_batch=0)
        with pytest.raises(ExecutionError):
            ShardedExecutor(num_workers=0)

    def test_workers_require_picklable_backend(self):
        from repro.backends.batched_statevector import BatchedStatevectorBackend

        with pytest.raises(ExecutionError):
            ShardedExecutor(
                lambda n: BatchedStatevectorBackend(n), num_workers=2
            )

    def test_rejects_sample_kwargs(self):
        with pytest.raises(ExecutionError):
            ShardedExecutor(sample_kwargs={"cache": True})

    def test_requires_specs_and_measurements(self, noisy_ghz3):
        with pytest.raises(ExecutionError):
            ShardedExecutor().execute(noisy_ghz3, [], seed=0)
        with pytest.raises(ExecutionError):
            ShardedExecutor().execute(Circuit(1).h(0).freeze(), [_spec(0, 1)], seed=0)
