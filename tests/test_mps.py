"""MPS backend: exactness at full bond, truncation, routing, sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.mps import MPSBackend
from repro.backends.statevector import StatevectorBackend
from repro.channels.standard import amplitude_damping
from repro.circuits import Circuit, library
from repro.circuits.gates import CX, H, T, X
from repro.errors import BackendError
from repro.rng import make_rng


def _run_both(circ):
    sv = StatevectorBackend(circ.num_qubits)
    mps = MPSBackend(circ.num_qubits, max_bond=256)
    for op in circ.coherent_ops:
        sv.apply_gate(op.gate, op.qubits)
        mps.apply_gate(op.gate, op.qubits)
    return sv, mps


class TestExactness:
    def test_initial_state(self):
        mps = MPSBackend(3)
        psi = mps.to_statevector()
        assert abs(psi[0] - 1.0) < 1e-12

    def test_single_qubit_gates(self):
        circ = Circuit(3).h(0).x(1).t(2)
        sv, mps = _run_both(circ)
        assert np.allclose(mps.to_statevector(), sv.statevector, atol=1e-10)

    def test_adjacent_two_qubit(self):
        circ = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        sv, mps = _run_both(circ)
        assert np.allclose(mps.to_statevector(), sv.statevector, atol=1e-10)

    def test_long_range_two_qubit_swap_routing(self):
        circ = Circuit(5).h(0).cx(0, 4)
        sv, mps = _run_both(circ)
        assert np.allclose(mps.to_statevector(), sv.statevector, atol=1e-10)

    def test_reversed_target_order(self):
        circ = Circuit(3).x(2).cx(2, 0)
        sv, mps = _run_both(circ)
        assert np.allclose(mps.to_statevector(), sv.statevector, atol=1e-10)

    @pytest.mark.parametrize("depth", [2, 4])
    def test_random_brickwork_exact_at_full_bond(self, depth):
        circ = library.random_brickwork(6, depth, rng=make_rng(depth))
        sv, mps = _run_both(circ)
        fidelity = abs(np.vdot(sv.statevector, mps.to_statevector())) ** 2
        assert fidelity == pytest.approx(1.0, abs=1e-9)
        assert mps.truncation_error < 1e-12

    def test_three_qubit_gate_rejected(self):
        mps = MPSBackend(3)
        with pytest.raises(BackendError):
            mps.apply_matrix(np.eye(8), [0, 1, 2])


class TestTruncation:
    def test_bond_cap_enforced(self):
        circ = library.random_brickwork(8, 6, rng=make_rng(1))
        mps = MPSBackend(8, max_bond=4)
        for op in circ.coherent_ops:
            mps.apply_gate(op.gate, op.qubits)
        assert max(mps.bond_dimensions()) <= 4
        assert mps.truncation_error > 0

    def test_truncation_error_decreases_with_bond(self):
        circ = library.random_brickwork(8, 4, rng=make_rng(2))
        errors = []
        for chi in (2, 8, 64):
            mps = MPSBackend(8, max_bond=chi)
            for op in circ.coherent_ops:
                mps.apply_gate(op.gate, op.qubits)
            errors.append(mps.truncation_error)
        assert errors[0] >= errors[1] >= errors[2]

    def test_ghz_needs_only_bond_two(self):
        circ = library.ghz(10)
        mps = MPSBackend(10, max_bond=2)
        for op in circ.coherent_ops:
            mps.apply_gate(op.gate, op.qubits)
        assert mps.truncation_error < 1e-12
        assert max(mps.bond_dimensions()) == 2


class TestNormsAndExpectations:
    def test_norm_after_unitaries(self):
        circ = library.random_brickwork(5, 3, rng=make_rng(3))
        mps = MPSBackend(5)
        for op in circ.coherent_ops:
            mps.apply_gate(op.gate, op.qubits)
        assert mps.norm_squared() == pytest.approx(1.0, abs=1e-9)

    def test_renormalize_after_kraus(self):
        mps = MPSBackend(2)
        mps.apply_gate(H, [0])
        prob = mps.apply_channel_choice(amplitude_damping(0.5), [0], 1)
        assert prob == pytest.approx(0.25)
        assert mps.norm_squared() == pytest.approx(1.0, abs=1e-9)

    def test_expectation_local_matches_statevector(self):
        circ = library.random_brickwork(5, 3, rng=make_rng(4))
        sv, mps = _run_both(circ)
        z = np.diag([1.0, -1.0])
        for q in range(5):
            expected = sv.expectation_local(z, [q])
            got = mps.expectation_local(z, [q])
            assert got.real == pytest.approx(expected.real, abs=1e-8)

    def test_branch_probabilities_match_statevector(self):
        circ = library.random_brickwork(4, 2, rng=make_rng(5))
        sv, mps = _run_both(circ)
        ch = amplitude_damping(0.3)
        assert np.allclose(
            mps.branch_probabilities(ch, [2]), sv.branch_probabilities(ch, [2]), atol=1e-8
        )

    def test_inner_product(self):
        a = MPSBackend(3)
        b = MPSBackend(3)
        b.apply_gate(X, [0])
        assert abs(a.inner(a) - 1.0) < 1e-10
        assert abs(a.inner(b)) < 1e-10


class TestConversion:
    def test_from_statevector_roundtrip(self, rng):
        from repro.linalg import random_statevector

        psi = random_statevector(5, rng)
        mps = MPSBackend.from_statevector(psi)
        assert np.allclose(mps.to_statevector(), psi, atol=1e-10)

    def test_from_statevector_truncated_is_normalized_up_to_weight(self, rng):
        from repro.linalg import random_statevector

        psi = random_statevector(6, rng)
        mps = MPSBackend.from_statevector(psi, max_bond=2)
        assert mps.truncation_error > 0
        fid = abs(np.vdot(psi, mps.to_statevector())) ** 2
        assert fid < 1.0

    def test_run_fixed_matches_statevector(self, noisy_ghz3):
        mps = MPSBackend(3, max_bond=16)
        sv = StatevectorBackend(3)
        w_mps = mps.run_fixed(noisy_ghz3, {0: 1})
        w_sv = sv.run_fixed(noisy_ghz3, {0: 1})
        assert w_mps == pytest.approx(w_sv, abs=1e-9)
        assert np.allclose(mps.to_statevector(), sv.statevector, atol=1e-8)
