"""Pauli-string algebra: multiplication, phases, commutation (+ hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.pauli import (
    PauliString,
    all_pauli_labels,
    pauli_string_matrix,
    weight_bounded_paulis,
)
from repro.errors import ChannelError

labels_2q = st.text(alphabet="IXYZ", min_size=2, max_size=2)
labels_3q = st.text(alphabet="IXYZ", min_size=3, max_size=3)


class TestConstruction:
    def test_from_label_roundtrip(self):
        p = PauliString.from_label("XIZY")
        assert p.label() == "XIZY"

    def test_identity(self):
        p = PauliString.identity(4)
        assert p.weight() == 0
        assert p.label() == "IIII"

    def test_single(self):
        p = PauliString.single(3, 1, "y")
        assert p.label() == "IYI"
        assert p.support() == (1,)

    def test_invalid_character(self):
        with pytest.raises(ChannelError):
            PauliString.from_label("XQ")

    def test_weight_and_support(self):
        p = PauliString.from_label("XIYZ")
        assert p.weight() == 3
        assert p.support() == (0, 2, 3)


class TestDenseAgreement:
    @given(labels_2q)
    @settings(max_examples=30, deadline=None)
    def test_to_matrix_matches_label_matrix(self, label):
        p = PauliString.from_label(label)
        # to_matrix includes the tracked phase; for a fresh label the net
        # operator equals the Hermitian label matrix.
        assert np.allclose(p.to_matrix(), pauli_string_matrix(label))

    @given(labels_2q, labels_2q)
    @settings(max_examples=40, deadline=None)
    def test_multiplication_matches_dense(self, la, lb):
        pa, pb = PauliString.from_label(la), PauliString.from_label(lb)
        dense = pauli_string_matrix(la) @ pauli_string_matrix(lb)
        assert np.allclose((pa * pb).to_matrix(), dense)

    @given(labels_3q, labels_3q)
    @settings(max_examples=40, deadline=None)
    def test_commutation_matches_dense(self, la, lb):
        pa, pb = PauliString.from_label(la), PauliString.from_label(lb)
        a, b = pauli_string_matrix(la), pauli_string_matrix(lb)
        commutes_dense = np.allclose(a @ b, b @ a)
        assert pa.commutes_with(pb) == commutes_dense

    @given(labels_2q)
    @settings(max_examples=30, deadline=None)
    def test_adjoint_matches_dense(self, label):
        p = PauliString.from_label(label)
        assert np.allclose(p.adjoint().to_matrix(), p.to_matrix().conj().T)

    @given(labels_2q)
    @settings(max_examples=30, deadline=None)
    def test_self_product_is_identity(self, label):
        p = PauliString.from_label(label)
        sq = p * p
        assert np.allclose(sq.to_matrix(), np.eye(4))


class TestAlgebra:
    def test_xy_equals_iz(self):
        x, y = PauliString.from_label("X"), PauliString.from_label("Y")
        product = x * y
        assert np.allclose(product.to_matrix(), 1j * pauli_string_matrix("Z"))

    def test_anticommutation(self):
        assert not PauliString.from_label("X").commutes_with(PauliString.from_label("Z"))
        assert PauliString.from_label("XX").commutes_with(PauliString.from_label("ZZ"))

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ChannelError):
            PauliString.from_label("X") * PauliString.from_label("XX")

    def test_hash_and_eq(self):
        a = PauliString.from_label("XZ")
        b = PauliString.from_label("XZ")
        assert a == b and hash(a) == hash(b)

    def test_equal_up_to_phase(self):
        a = PauliString.from_label("Y")
        b = PauliString(a.x, a.z, phase=(a.phase + 2) % 4)
        assert a != b
        assert a.equal_up_to_phase(b)

    def test_phase_factor_hermitian_for_labels(self):
        for label in ("X", "Y", "Z", "XY", "YY"):
            f = PauliString.from_label(label).phase_factor()
            assert abs(f - 1.0) < 1e-12


class TestEnumerations:
    def test_all_pauli_labels_count(self):
        assert len(all_pauli_labels(2)) == 16
        assert all_pauli_labels(1) == ("I", "X", "Y", "Z")

    def test_weight_bounded_count(self):
        # n=3, w<=1: 3 qubits x 3 kinds = 9
        assert sum(1 for _ in weight_bounded_paulis(3, 1)) == 9
        # w<=2 adds C(3,2)*9 = 27 -> 36
        assert sum(1 for _ in weight_bounded_paulis(3, 2)) == 36

    def test_weight_bounded_never_identity(self):
        assert all(p.weight() >= 1 for p in weight_bounded_paulis(3, 2))
