"""Edge cases of the benchmark comparator (``benchmarks/bench_compare.py``).

The comparator is the regression gate CI trusts, so its own edge
behaviour needs pinning: baselines written before a TIME_COLUMNS entry
existed must still match, empty/rowless baselines must be a schema
error (exit 2), and the regression threshold must be an open bound
(``cur < (1 - t) * base`` — exactly-at-threshold passes).
"""

import copy
import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

from bench_compare import (  # noqa: E402
    TIME_COLUMNS,
    compare_payloads,
    main,
    row_key,
)


def _payload(rows, benchmark="demo"):
    return {
        "schema_version": 1,
        "benchmark": benchmark,
        "created_unix": 1700000000.0,
        "python": "3.11.0",
        "numpy": "1.26.0",
        "array_module": "numpy",
        "workload": {"num_qubits": 4},
        "rows": rows,
    }


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


ROW = {
    "strategy": "vectorized",
    "trajectories": 8,
    "shots_per_second": 1.0e6,
    "seconds": 0.01,
    "first_chunk_seconds": 0.002,
    "renorm_seconds": 0.001,
}


class TestRowIdentity:
    def test_time_columns_excluded_from_identity(self):
        a = dict(ROW)
        b = dict(ROW, seconds=99.0, first_chunk_seconds=5.0, renorm_seconds=7.0)
        assert row_key(a, "shots_per_second") == row_key(b, "shots_per_second")

    def test_baseline_missing_new_time_column_still_matches(self):
        """A baseline written before ``renorm_seconds`` (the newest
        TIME_COLUMNS entry) existed must match a current row that has it."""
        old = {k: v for k, v in ROW.items() if k not in TIME_COLUMNS}
        old["seconds"] = 0.02  # old docs had only the original wall-time column
        report = compare_payloads(_payload([old]), _payload([dict(ROW)]))
        assert len(report["matched"]) == 1
        assert report["missing"] == [] and report["extra"] == []

    def test_metric_excluded_from_identity(self):
        fast = dict(ROW, shots_per_second=2.0e6)
        report = compare_payloads(_payload([dict(ROW)]), _payload([fast]))
        (_, base, cur, ratio, regressed) = report["matched"][0]
        assert (base, cur) == (1.0e6, 2.0e6)
        assert ratio == pytest.approx(2.0)
        assert not regressed


class TestThresholdBoundary:
    def _single(self, base_rate, cur_rate, threshold):
        report = compare_payloads(
            _payload([dict(ROW, shots_per_second=base_rate)]),
            _payload([dict(ROW, shots_per_second=cur_rate)]),
            threshold=threshold,
        )
        (_, _, _, _, regressed) = report["matched"][0]
        return regressed

    def test_exactly_at_threshold_is_not_regressed(self):
        # cur == (1 - t) * base sits on the boundary: strict < means pass.
        assert self._single(1.0e6, 0.85e6, 0.15) is False

    def test_just_below_threshold_is_regressed(self):
        assert self._single(1.0e6, 0.85e6 - 1.0, 0.15) is True

    def test_zero_threshold_flags_any_drop(self):
        assert self._single(1.0e6, 1.0e6, 0.0) is False
        assert self._single(1.0e6, 1.0e6 - 1.0, 0.0) is True


class TestMainExitCodes:
    def test_empty_baseline_rows_is_schema_error(self, tmp_path, capsys):
        bad = _payload([])
        base = _write(tmp_path, "base.json", bad)
        cur = _write(tmp_path, "cur.json", _payload([dict(ROW)]))
        assert main([base, cur]) == 2
        assert "rows must be a non-empty list" in capsys.readouterr().err

    def test_disjoint_rows_no_comparables_is_error(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload([dict(ROW, strategy="serial")]))
        cur = _write(tmp_path, "cur.json", _payload([dict(ROW)]))
        assert main([base, cur]) == 2
        assert "no comparable rows" in capsys.readouterr().err

    def test_benchmark_name_mismatch_is_error(self, tmp_path):
        base = _write(tmp_path, "base.json", _payload([dict(ROW)], benchmark="a"))
        cur = _write(tmp_path, "cur.json", _payload([dict(ROW)], benchmark="b"))
        assert main([base, cur]) == 2

    def test_regression_exits_one(self, tmp_path):
        base = _write(tmp_path, "base.json", _payload([dict(ROW)]))
        cur = _write(
            tmp_path, "cur.json", _payload([dict(ROW, shots_per_second=1.0e5)])
        )
        assert main([base, cur, "--threshold", "0.15"]) == 1

    def test_clean_comparison_exits_zero(self, tmp_path):
        base = _write(tmp_path, "base.json", _payload([dict(ROW)]))
        cur = _write(tmp_path, "cur.json", _payload([dict(ROW)]))
        assert main([base, cur]) == 0

    def test_missing_baseline_row_fails_only_with_require_all(self, tmp_path):
        two = _payload([dict(ROW), dict(ROW, strategy="serial")])
        base = _write(tmp_path, "base.json", two)
        cur = _write(tmp_path, "cur.json", _payload([dict(ROW)]))
        assert main([base, cur]) == 0
        assert main([base, cur, "--require-all"]) == 1


class TestDirectoryMode:
    def _make_dir(self, root, name, payloads):
        d = root / name
        d.mkdir()
        for fname, payload in payloads.items():
            (d / fname).write_text(json.dumps(payload))
        return str(d)

    def test_matching_dirs_compare_clean(self, tmp_path):
        docs = {
            "BENCH_a.json": _payload([dict(ROW)], benchmark="a"),
            "BENCH_b.json": _payload([dict(ROW)], benchmark="b"),
        }
        base = self._make_dir(tmp_path, "base", docs)
        cur = self._make_dir(tmp_path, "cur", copy.deepcopy(docs))
        assert main([base, cur]) == 0

    def test_regression_in_one_file_fails_the_dir(self, tmp_path):
        docs = {"BENCH_a.json": _payload([dict(ROW)], benchmark="a")}
        slow = {
            "BENCH_a.json": _payload(
                [dict(ROW, shots_per_second=1.0e5)], benchmark="a"
            )
        }
        base = self._make_dir(tmp_path, "base", docs)
        cur = self._make_dir(tmp_path, "cur", slow)
        assert main([base, cur, "--threshold", "0.15"]) == 1

    def test_baseline_only_file_fails_only_with_require_all(self, tmp_path):
        docs = {
            "BENCH_a.json": _payload([dict(ROW)], benchmark="a"),
            "BENCH_b.json": _payload([dict(ROW)], benchmark="b"),
        }
        base = self._make_dir(tmp_path, "base", docs)
        cur = self._make_dir(
            tmp_path, "cur", {"BENCH_a.json": _payload([dict(ROW)], benchmark="a")}
        )
        assert main([base, cur]) == 0
        assert main([base, cur, "--require-all"]) == 1

    def test_no_shared_files_is_error(self, tmp_path):
        base = self._make_dir(
            tmp_path, "base", {"BENCH_a.json": _payload([dict(ROW)], benchmark="a")}
        )
        cur = self._make_dir(
            tmp_path, "cur", {"BENCH_b.json": _payload([dict(ROW)], benchmark="b")}
        )
        assert main([base, cur]) == 2

    def test_mixed_file_and_dir_is_error(self, tmp_path):
        base = self._make_dir(
            tmp_path, "base", {"BENCH_a.json": _payload([dict(ROW)], benchmark="a")}
        )
        cur = _write(tmp_path, "cur.json", _payload([dict(ROW)]))
        assert main([base, cur]) == 2
