"""Deterministic stream-splitting contract of :mod:`repro.rng`."""

import numpy as np
import pytest

from repro.rng import StreamFactory, make_rng, trajectory_rng


class TestTrajectoryStreams:
    def test_same_seed_same_index_same_stream(self):
        a = trajectory_rng(7, 3).random(16)
        b = trajectory_rng(7, 3).random(16)
        assert np.array_equal(a, b)

    def test_different_indices_differ(self):
        a = trajectory_rng(7, 0).random(16)
        b = trajectory_rng(7, 1).random(16)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = trajectory_rng(7, 0).random(16)
        b = trajectory_rng(8, 0).random(16)
        assert not np.array_equal(a, b)

    def test_stream_independent_of_enumeration_order(self):
        """Stream i is identical no matter which streams were made before."""
        direct = trajectory_rng(42, 5).random(8)
        factory = StreamFactory(42)
        for i in range(5):
            factory.rng_for(i).random(3)  # consume other streams first
        assert np.array_equal(factory.rng_for(5).random(8), direct)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            trajectory_rng(0, -1)


class TestStreamFactory:
    def test_streams_iterator_matches_rng_for(self):
        factory = StreamFactory(9)
        from_iter = [g.random(4) for g in factory.streams(3)]
        from_calls = [factory.rng_for(i).random(4) for i in range(3)]
        for a, b in zip(from_iter, from_calls):
            assert np.array_equal(a, b)

    def test_entropy_seed_is_fixed_at_construction(self):
        factory = StreamFactory(None)
        a = factory.rng_for(0).random(4)
        b = factory.rng_for(0).random(4)
        assert np.array_equal(a, b)

    def test_child_seeds_deterministic(self):
        assert StreamFactory(5).child_seeds(4) == StreamFactory(5).child_seeds(4)


def test_make_rng_reproducible():
    assert np.array_equal(make_rng(1).random(8), make_rng(1).random(8))
