"""Integration: the paper's target application end-to-end.

PTSBE on a QEC syndrome-extraction circuit -> provenance-labeled decoder
dataset -> decoder evaluation.  This is the "massive data collection for
quantum error correction" pipeline of paper §2.3 at laptop scale.
"""

import numpy as np
import pytest

from repro.channels import NoiseModel, depolarizing
from repro.data.dataset import build_decoder_dataset
from repro.data.io import load_dataset, save_dataset
from repro.execution import run_ptsbe
from repro.pts import ExhaustivePTS, ProbabilisticPTS
from repro.qec import (
    LookupDecoder,
    steane_code,
    syndrome_extraction_circuit,
)
from repro.qec.decoders import is_logical_error
from repro.rng import make_rng


@pytest.fixture(scope="module")
def steane_experiment():
    """Steane memory experiment: encode, depolarize data, extract syndrome."""
    code = steane_code()
    circ, layout = syndrome_extraction_circuit(code, rounds=1)
    # Data-qubit depolarizing noise between encoding and extraction: attach
    # to a copy at the right program point (after the encoder ops).
    from repro.circuits import Circuit
    from repro.circuits.operations import GateOp

    noisy = Circuit(circ.num_qubits)
    injected = False
    for op in circ:
        if not injected and isinstance(op, GateOp) and op.qubits[0] >= code.n:
            for q in range(code.n):
                noisy.attach(depolarizing(0.02), q)
            injected = True
        noisy.append(op)
    noisy.freeze()
    return code, noisy, layout


class TestDecoderDataset:
    def test_dataset_build(self, steane_experiment):
        code, circ, layout = steane_experiment
        result = run_ptsbe(circ, ProbabilisticPTS(nsamples=400, nshots=50), seed=40)
        ds = build_decoder_dataset(result, circ, code, layout)
        assert ds.num_samples == result.total_shots
        assert ds.features.shape[1] == layout.syndrome_bit_count()

    def test_labels_match_syndrome_decoding(self, steane_experiment):
        """Provenance labels agree with what a lookup decoder infers from
        the syndromes on single-error trajectories — the supervised-learning
        consistency the paper's AI-decoder application needs."""
        code, circ, layout = steane_experiment
        result = run_ptsbe(circ, ExhaustivePTS(cutoff=5e-3, nshots=20), seed=41)
        ds = build_decoder_dataset(result, circ, code, layout)
        decoder = LookupDecoder(code, max_weight=1)
        checked = 0
        for i in range(ds.num_samples):
            synd = ds.features[i]
            corr = decoder.decode(synd)
            if corr is None:
                continue
            tid = int(ds.trajectory_ids[i])
            record = ds.records[tid]
            if record.num_errors() > 1:
                continue
            # Decoder's logical-flip estimate vs the provenance label.
            lz = code.logical_z_support(0)
            decoder_flip = int(np.dot(corr.x, lz) % 2)
            assert decoder_flip == ds.labels[i]
            checked += 1
        assert checked > 50

    def test_ideal_trajectory_has_zero_syndrome_and_label(self, steane_experiment):
        code, circ, layout = steane_experiment
        result = run_ptsbe(circ, ExhaustivePTS(cutoff=0.5, nshots=30), seed=42)
        ds = build_decoder_dataset(result, circ, code, layout)
        assert np.all(ds.features == 0)
        assert np.all(ds.labels == 0)

    def test_round_trip_through_disk(self, steane_experiment, tmp_path):
        code, circ, layout = steane_experiment
        result = run_ptsbe(circ, ProbabilisticPTS(nsamples=100, nshots=10), seed=43)
        ds = build_decoder_dataset(result, circ, code, layout)
        save_dataset(ds, tmp_path / "steane.npz")
        loaded = load_dataset(tmp_path / "steane.npz")
        assert loaded.num_samples == ds.num_samples
        assert loaded.metadata["code"] == "steane"

    def test_single_error_syndromes_are_nonzero(self, steane_experiment):
        """Every single-X-error trajectory must light up its syndrome."""
        code, circ, layout = steane_experiment
        result = run_ptsbe(circ, ExhaustivePTS(cutoff=5e-3, nshots=5), seed=44)
        ds = build_decoder_dataset(result, circ, code, layout)
        for i in range(ds.num_samples):
            tid = int(ds.trajectory_ids[i])
            record = ds.records[tid]
            if record.num_errors() == 1:
                event = record.events[0]
                # X and Y errors flip Z-checks; Z and Y flip X-checks —
                # every depolarizing branch is detectable at d=3, weight 1.
                assert ds.features[i].any()


class TestProvenanceStatistics:
    def test_error_frequency_tracks_channel_rates(self, steane_experiment):
        """Across trajectories, per-site error frequencies in the PTS output
        reflect the channel's nominal probability (Algorithm 2 is an
        unbiased Bernoulli sampler before dedup)."""
        code, circ, layout = steane_experiment
        from repro.pts.base import NoiseSiteView

        view = NoiseSiteView(circ)
        sampler = ProbabilisticPTS(nsamples=4000, nshots=1)
        # Count pre-dedup statistics via attempted - duplicates bookkeeping.
        result = sampler.sample(circ, make_rng(45))
        single_error_specs = [s for s in result.specs if s.record.num_errors() == 1]
        assert len(single_error_specs) >= code.n  # most single sites sampled
