"""Dense kernel tiers: the k=3 reshape-view path and the shared norm reduction."""

import numpy as np
import pytest

import repro.linalg.apply as apply_mod
from repro.backends.batched_statevector import BatchedStatevectorBackend
from repro.backends.statevector import StatevectorBackend
from repro.linalg import (
    apply_compiled_stack,
    apply_gemm_stack,
    apply_matrix_stack,
    compile_operator,
    embed_operator,
    random_unitary,
    row_norms_squared,
)

DTYPE = np.dtype(np.complex128)

#: Every 3-qubit layout class on a 6-qubit register: contiguous at both
#: edges, single gap, double gap, full spread — plus non-ascending orders
#: that must canonicalize.
K3_LAYOUTS = [
    (0, 1, 2),
    (3, 4, 5),
    (1, 2, 3),
    (0, 2, 4),
    (0, 3, 5),
    (1, 3, 5),
    (0, 1, 5),
    (2, 0, 5),
    (5, 3, 1),
    (4, 0, 2),
]


def _random_stack(rows, num_qubits, seed):
    rng = np.random.default_rng(seed)
    stack = rng.normal(size=(rows, 2**num_qubits)) + 1j * rng.normal(
        size=(rows, 2**num_qubits)
    )
    return np.ascontiguousarray(stack.astype(DTYPE))


class TestK3ViewTier:
    """The dedicated 3-qubit reshape-view path vs. the GEMM fallback."""

    @pytest.mark.parametrize("targets", K3_LAYOUTS)
    def test_matches_dense_reference_and_gemm(self, targets):
        rng = np.random.default_rng(hash(targets) % 2**32)
        u = random_unitary(8, rng)
        stack = _random_stack(3, 6, 11)
        op = compile_operator(u, targets, DTYPE)
        assert op.targets == tuple(sorted(targets))
        out_view = apply_compiled_stack(stack.copy(), op, 6)
        out_gemm = apply_gemm_stack(stack.copy(), op, 6)
        reference = (embed_operator(u, list(targets), 6) @ stack.T).T
        np.testing.assert_allclose(out_view, reference, atol=1e-12)
        np.testing.assert_allclose(out_gemm, reference, atol=1e-12)

    @pytest.mark.parametrize("targets", [(0, 1, 2), (1, 3, 5), (4, 2, 0)])
    def test_adjoint_roundtrip(self, targets):
        rng = np.random.default_rng(3)
        u = random_unitary(8, rng)
        stack = _random_stack(2, 6, 5)
        forward = compile_operator(u, targets, DTYPE)
        backward = compile_operator(u.conj().T, targets, DTYPE)
        roundtrip = apply_compiled_stack(
            apply_compiled_stack(stack.copy(), forward, 6), backward, 6
        )
        np.testing.assert_allclose(roundtrip, stack, atol=1e-12)

    def test_k3_never_reaches_gemm(self, monkeypatch):
        """Structural guarantee: 3-qubit operators stay on the view tier."""

        def boom(*args, **kwargs):
            raise AssertionError("k=3 operator fell through to the GEMM path")

        monkeypatch.setattr(apply_mod, "apply_gemm_stack", boom)
        u = random_unitary(8, np.random.default_rng(7))
        apply_matrix_stack(_random_stack(2, 5, 1), u, (0, 2, 4), 5, DTYPE)
        from repro.circuits.gates import CCX

        apply_matrix_stack(_random_stack(2, 4, 2), CCX.matrix, (1, 2, 3), 4, DTYPE)

    def test_k4_still_takes_gemm(self, monkeypatch):
        calls = []
        original = apply_mod.apply_gemm_stack
        monkeypatch.setattr(
            apply_mod,
            "apply_gemm_stack",
            lambda *a, **k: calls.append(1) or original(*a, **k),
        )
        u = random_unitary(16, np.random.default_rng(9))
        apply_matrix_stack(_random_stack(2, 5, 3), u, (0, 1, 3, 4), 5, DTYPE)
        assert calls, "4-qubit operator should use the GEMM fallback"

    def test_ccx_is_dense_slice_copy_tier(self):
        from repro.circuits.gates import CCX

        op = compile_operator(CCX.matrix, (0, 1, 2), DTYPE)
        assert op.tier == "dense"
        stack = _random_stack(2, 3, 4)
        out = apply_compiled_stack(stack.copy(), op, 3)
        reference = (CCX.matrix @ stack.T).T
        np.testing.assert_allclose(out, reference, atol=1e-14)

    def test_k3_diagonal_applies_in_place(self):
        """A 3-qubit diagonal (ccz-like phase) must hit the in-place tier."""
        diag = np.diag(np.exp(1j * np.linspace(0.1, 0.9, 8)))
        op = compile_operator(diag, (1, 3, 5), DTYPE)
        assert op.tier == "diagonal"
        stack = _random_stack(2, 6, 6)
        expected = (embed_operator(diag, [1, 3, 5], 6) @ stack.T).T
        out = apply_compiled_stack(stack, op, 6)
        assert out is stack  # mutated in place, no fresh buffer
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_k3_scalar_identity_tier(self):
        op = compile_operator(0.5 * np.eye(8), (0, 1, 2), DTYPE)
        assert op.tier == "scalar"
        ident = compile_operator(np.eye(8), (2, 3, 4), DTYPE)
        assert ident.tier == "identity"

    @pytest.mark.parametrize("targets", [(0, 2, 4), (1, 3, 5), (0, 2, 5)])
    def test_gapped_dense_blocked_gemm_bitwise_matches_gemm(self, targets):
        """The blocked gapped-dense path must stay *bitwise* (not just
        allclose) interchangeable with apply_gemm_stack — the maintenance
        invariant behind its 'same arithmetic' claim."""
        u = random_unitary(8, np.random.default_rng(31))
        op = compile_operator(u, targets, DTYPE)
        assert op.diag is None and op.nnz > 16  # must exercise the blocked path
        for rows in (1, 5, 33):
            stack = _random_stack(rows, 6, rows)
            np.testing.assert_array_equal(
                apply_compiled_stack(stack.copy(), op, 6),
                apply_gemm_stack(stack.copy(), op, 6),
            )

    def test_noncontiguous_layout_row_by_row_matches_stacked(self):
        """Stacked and row-by-row application stay bitwise interchangeable
        on the new tier (the property the batched backend relies on)."""
        u = random_unitary(8, np.random.default_rng(12))
        stack = _random_stack(5, 6, 13)
        op = compile_operator(u, (0, 2, 5), DTYPE)
        stacked = apply_compiled_stack(stack.copy(), op, 6)
        for row in range(5):
            single = apply_compiled_stack(
                np.ascontiguousarray(stack[row : row + 1]), op, 6
            )
            np.testing.assert_array_equal(stacked[row], single[0])


class TestRowNormsSquared:
    """The shared serial/stacked renormalization reduction."""

    def test_rowwise_bitwise_identical_to_single_row(self):
        stack = _random_stack(9, 7, 21)
        full = row_norms_squared(stack)
        for i in range(9):
            single = row_norms_squared(np.ascontiguousarray(stack[i : i + 1]))
            assert full[i] == single[0]  # bitwise, not approx

    def test_serial_backend_norm_is_the_shared_reduction(self):
        sv = StatevectorBackend(4)
        rng = np.random.default_rng(2)
        state = rng.normal(size=16) + 1j * rng.normal(size=16)
        sv.set_statevector(state, normalize=True)
        expected = float(
            row_norms_squared(
                np.ascontiguousarray(sv.array_backend.to_host(sv.statevector)).reshape(
                    1, -1
                )
            )[0]
        )
        assert sv.norm_squared() == expected

    def test_stacked_norms_match_serial_bitwise(self, noisy_ghz3):
        choices_list = [{}, {0: 1}, {1: 2}]
        stacked = BatchedStatevectorBackend(3)
        weights, alive = stacked.run_fixed_stack(noisy_ghz3, choices_list)
        assert alive.all()
        for row, choices in enumerate(choices_list):
            serial = StatevectorBackend(3)
            w = serial.run_fixed(noisy_ghz3, choices)
            assert weights[row] == w  # bitwise weight identity
            np.testing.assert_array_equal(
                stacked.array_backend.to_host(stacked.statevector(row)),
                serial.array_backend.to_host(serial.statevector),
            )
        norms = stacked.norms_squared()
        assert norms.shape == (3,)
        for row in range(3):
            assert norms[row] == float(
                row_norms_squared(
                    np.ascontiguousarray(
                        stacked.array_backend.to_host(stacked.statevector(row))
                    ).reshape(1, -1)
                )[0]
            )

    def test_requires_2d_contiguous(self):
        stack = _random_stack(4, 3, 1)
        with pytest.raises(ValueError):
            row_norms_squared(stack[:, ::2])
        with pytest.raises(ValueError):
            row_norms_squared(stack.reshape(-1))

    def test_renorm_seconds_counters_accumulate(self, noisy_ghz3):
        serial = StatevectorBackend(3)
        assert serial.renorm_seconds == 0.0
        serial.run_fixed(noisy_ghz3, {})
        assert serial.renorm_seconds > 0.0
        stacked = BatchedStatevectorBackend(3)
        assert stacked.renorm_seconds == 0.0
        stacked.run_fixed_stack(noisy_ghz3, [{}, {0: 1}])
        assert stacked.renorm_seconds > 0.0

    def test_complex64_serial_stacked_bitwise(self, noisy_ghz3):
        """The divisor arithmetic is shared at any state dtype: under the
        paper's complex64 the serial scalar path and the stacked array
        path must still produce bitwise-identical states (regression —
        a float64-scalar vs float32-array divisor once diverged here)."""
        from repro.config import Config

        cfg = Config(dtype=np.dtype(np.complex64))
        choices_list = [{}, {0: 1}]
        stacked = BatchedStatevectorBackend(3, config=cfg)
        weights, alive = stacked.run_fixed_stack(noisy_ghz3, choices_list)
        assert alive.all()
        for row, choices in enumerate(choices_list):
            serial = StatevectorBackend(3, config=cfg)
            w = serial.run_fixed(noisy_ghz3, choices)
            assert weights[row] == w
            np.testing.assert_array_equal(
                stacked.array_backend.to_host(stacked.statevector(row)),
                serial.array_backend.to_host(serial.statevector),
            )

    def test_dead_rows_still_detected_with_batched_renorm(self):
        from repro.channels.standard import amplitude_damping
        from repro.circuits import Circuit

        circ = Circuit(1).attach(amplitude_damping(0.1), 0).measure_all().freeze()
        stacked = BatchedStatevectorBackend(1)
        weights, alive = stacked.run_fixed_stack(circ, [{0: 1}, {}])
        assert not alive[0] and alive[1]
        assert weights[0] == 0.0 and weights[1] > 0.0
        np.testing.assert_array_equal(
            stacked.array_backend.to_host(stacked.statevector(0)), [0.0, 0.0]
        )
