"""Encoders, syndrome extraction, decoders — end-to-end QEC machinery."""

import numpy as np
import pytest

from repro.backends.pauli_frame import FrameSampler
from repro.backends.stabilizer import StabilizerBackend
from repro.backends.statevector import StatevectorBackend
from repro.channels import NoiseModel, depolarizing
from repro.channels.pauli import PauliString
from repro.circuits import Circuit
from repro.qec import (
    LookupDecoder,
    MinimumWeightDecoder,
    css_encoding_circuit,
    steane_code,
    syndrome_extraction_circuit,
)
from repro.qec.codes import repetition_code, rotated_surface_code
from repro.qec.color_codes import triangular_color_code
from repro.qec.decoders import is_logical_error
from repro.rng import make_rng


def _encode_tableau(code):
    enc, info = css_encoding_circuit(code)
    st = StabilizerBackend(code.n)
    for op in enc.coherent_ops:
        st.apply_gate_by_name(op.gate.name, op.qubits)
    return st, info


class TestEncoders:
    @pytest.mark.parametrize(
        "make_code",
        [steane_code, lambda: triangular_color_code(5), lambda: rotated_surface_code(3),
         lambda: repetition_code(5)],
        ids=["steane", "color5", "surface3", "rep5"],
    )
    def test_encoded_zero_logical(self, make_code):
        code = make_code()
        st, info = _encode_tableau(code)
        for stab in code.stabilizers():
            assert st.expectation_pauli(stab) == 1
        zl = PauliString(np.zeros(code.n, dtype=np.uint8), info.logical_z_rows[0])
        assert st.expectation_pauli(zl) == 1

    def test_encoded_one_logical(self):
        code = steane_code()
        enc, info = css_encoding_circuit(code)
        st = StabilizerBackend(code.n)
        st.xgate(info.data_qubits[0])  # prepare |1> on the data qubit
        for op in enc.coherent_ops:
            st.apply_gate_by_name(op.gate.name, op.qubits)
        zl = PauliString(np.zeros(code.n, dtype=np.uint8), info.logical_z_rows[0])
        assert st.expectation_pauli(zl) == -1
        for stab in code.stabilizers():
            assert st.expectation_pauli(stab) == 1

    def test_encoded_plus_logical(self):
        """H on the data qubit then encode gives |+_L> (X_L = +1)."""
        code = steane_code()
        enc, info = css_encoding_circuit(code)
        st = StabilizerBackend(code.n)
        st.h(info.data_qubits[0])
        for op in enc.coherent_ops:
            st.apply_gate_by_name(op.gate.name, op.qubits)
        xl = PauliString(info.logical_x_rows[0], np.zeros(code.n, dtype=np.uint8))
        assert st.expectation_pauli(xl) == 1

    def test_encoder_statevector_agrees_with_tableau(self):
        """Dense check: encoded |0_L> has +1 on every stabilizer."""
        code = steane_code()
        enc, info = css_encoding_circuit(code)
        sv = StatevectorBackend(code.n)
        for op in enc.coherent_ops:
            sv.apply_gate(op.gate, op.qubits)
        for stab in code.stabilizers():
            assert sv.expectation_pauli(stab) == pytest.approx(1.0, abs=1e-9)

    def test_encoder_uses_only_h_and_cx(self):
        enc, _ = css_encoding_circuit(triangular_color_code(5))
        names = {op.gate.name for op in enc.coherent_ops}
        assert names <= {"h", "cx"}


class TestSyndromeExtraction:
    def test_noiseless_syndrome_is_zero(self):
        code = steane_code()
        circ, layout = syndrome_extraction_circuit(code, rounds=2)
        circ.freeze()
        bits = FrameSampler(circ).sample(100, make_rng(0))
        synd = bits[:, : layout.syndrome_bit_count()]
        assert not np.any(synd)

    def test_injected_error_triggers_expected_syndrome(self):
        code = steane_code()
        circ, layout = syndrome_extraction_circuit(code, rounds=1)
        # Inject a deterministic X on data qubit 2 right after encoding:
        # rebuild with an explicit noise site.
        noisy = Circuit(circ.num_qubits)
        inserted = False
        from repro.circuits.operations import GateOp, MeasureOp

        encoder_ops = code.n  # not robust; instead inject before first ancilla op
        for op in circ:
            if not inserted and isinstance(op, GateOp) and op.qubits[0] >= code.n:
                from repro.channels.standard import bit_flip

                noisy.attach(bit_flip(1.0), 2)
                inserted = True
            noisy.append(op)
        noisy.freeze()
        bits = FrameSampler(noisy).sample(50, make_rng(1))
        synd = bits[0, : layout.syndrome_bit_count()]
        expected = code.syndrome_of(PauliString.single(code.n, 2, "X"))
        assert np.array_equal(synd, expected)
        assert np.all(bits[:, : layout.syndrome_bit_count()] == expected)

    def test_layout_bookkeeping(self):
        code = steane_code()
        circ, layout = syndrome_extraction_circuit(code, rounds=3)
        assert layout.rounds == 3
        assert layout.syndrome_bit_count() == 3 * 6
        assert circ.num_qubits == 7 + 18


class TestDecoders:
    @pytest.mark.parametrize("make_code", [steane_code, lambda: rotated_surface_code(3)],
                             ids=["steane", "surface3"])
    def test_lookup_corrects_all_weight_one(self, make_code):
        code = make_code()
        decoder = LookupDecoder(code, max_weight=1)
        for q in range(code.n):
            for kind in "XYZ":
                err = PauliString.single(code.n, q, kind)
                corr = decoder.decode(code.syndrome_of(err))
                assert corr is not None
                assert not is_logical_error(code, err * corr)

    @pytest.mark.slow
    def test_color5_corrects_all_weight_two(self):
        code = triangular_color_code(5)
        decoder = LookupDecoder(code, max_weight=2)
        rng = make_rng(5)
        from repro.channels.pauli import weight_bounded_paulis

        errors = list(weight_bounded_paulis(code.n, 2))
        # Sample a subset for runtime; d=5 corrects ALL weight<=2 errors.
        for idx in rng.choice(len(errors), size=120, replace=False):
            err = errors[int(idx)]
            corr = decoder.decode(code.syndrome_of(err))
            assert corr is not None
            assert not is_logical_error(code, err * corr)

    def test_minimum_weight_agrees_with_lookup(self):
        code = steane_code()
        lookup = LookupDecoder(code, max_weight=1)
        mw = MinimumWeightDecoder(code, max_weight=2)
        for q in range(code.n):
            err = PauliString.single(code.n, q, "Y")
            s = code.syndrome_of(err)
            a, b = lookup.decode(s), mw.decode(s)
            assert not is_logical_error(code, err * a)
            assert not is_logical_error(code, err * b)

    def test_weight_two_fails_on_distance_three(self):
        """d=3 codes must miscorrect some weight-2 errors — sanity check
        that our logical-error detector actually fires."""
        code = steane_code()
        decoder = LookupDecoder(code, max_weight=1)
        from repro.channels.pauli import weight_bounded_paulis

        failures = 0
        for err in weight_bounded_paulis(code.n, 2):
            if err.weight() != 2:
                continue
            corr = decoder.decode(code.syndrome_of(err))
            if corr is None or is_logical_error(code, err * corr):
                failures += 1
        assert failures > 0

    def test_decode_batch(self):
        code = steane_code()
        decoder = LookupDecoder(code, max_weight=1)
        errs = [PauliString.single(code.n, q, "X") for q in range(3)]
        syndromes = np.stack([code.syndrome_of(e) for e in errs])
        corrections, misses = decoder.decode_batch(syndromes)
        assert misses == 0 and len(corrections) == 3

    def test_inconsistent_residual_rejected(self):
        code = steane_code()
        err = PauliString.single(code.n, 0, "X")
        with pytest.raises(Exception):
            is_logical_error(code, err)  # nonzero syndrome residual
