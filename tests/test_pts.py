"""PTS algorithms: Algorithm 2, proportional, bands, exhaustive, top-k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import NoiseModel, depolarizing
from repro.circuits import Circuit
from repro.errors import SamplingError
from repro.pts import (
    ExhaustivePTS,
    NoiseSiteView,
    ProbabilisticPTS,
    ProbabilityBandPTS,
    ProportionalPTS,
    TopKPTS,
    apportion_shots,
    by_gate_context,
    by_qubits,
)
from repro.pts.compatibility import compatible, selection_signature, unique_kraus
from repro.rng import make_rng


class TestNoiseSiteView:
    def test_candidate_enumeration(self, noisy_ghz3):
        view = NoiseSiteView(noisy_ghz3)
        # 4 sites x 3 non-dominant branches (X, Y, Z of depolarizing).
        assert view.num_sites == 4
        assert view.num_candidates == 12

    def test_gate_context_recorded(self, noisy_ghz3):
        view = NoiseSiteView(noisy_ghz3)
        assert all(c.gate_context == "cx" for c in view.candidates)

    def test_joint_probability_ideal(self, noisy_ghz3):
        view = NoiseSiteView(noisy_ghz3)
        assert view.joint_probability([]) == pytest.approx((1 - 0.05) ** 4)

    def test_joint_probability_one_error(self, noisy_ghz3):
        view = NoiseSiteView(noisy_ghz3)
        cand = view.candidates[0]
        expected = (0.05 / 3) * (1 - 0.05) ** 3
        assert view.joint_probability([cand]) == pytest.approx(expected)

    def test_requires_frozen(self):
        with pytest.raises(SamplingError):
            NoiseSiteView(Circuit(1).h(0))


class TestCompatibility:
    def test_same_site_conflicts(self, noisy_ghz3):
        view = NoiseSiteView(noisy_ghz3)
        a, b = view.candidates[0], view.candidates[1]
        assert a.site_id == b.site_id
        assert not compatible(b, [a])

    def test_different_sites_compatible(self, noisy_ghz3):
        view = NoiseSiteView(noisy_ghz3)
        a = view.candidates[0]
        other = next(c for c in view.candidates if c.site_id != a.site_id and not (
            c.moment == a.moment and set(c.qubits) & set(a.qubits)))
        assert compatible(other, [a])

    def test_unique_kraus_registers(self, noisy_ghz3):
        view = NoiseSiteView(noisy_ghz3)
        seen = set()
        sel = [view.candidates[0]]
        assert unique_kraus(sel, seen)
        assert not unique_kraus(sel, seen)

    def test_signature_order_invariant(self, noisy_ghz3):
        view = NoiseSiteView(noisy_ghz3)
        a = view.candidates[0]
        b = next(c for c in view.candidates if c.site_id != a.site_id)
        assert selection_signature([a, b]) == selection_signature([b, a])


class TestProbabilisticPTS(object):
    def test_uniform_shots_assigned(self, noisy_ghz3):
        result = ProbabilisticPTS(nsamples=200, nshots=500).sample(noisy_ghz3, make_rng(0))
        assert result.num_trajectories > 0
        assert all(s.num_shots == 500 for s in result.specs)

    def test_no_duplicate_signatures(self, noisy_ghz3):
        result = ProbabilisticPTS(nsamples=500, nshots=1).sample(noisy_ghz3, make_rng(1))
        sigs = [s.record.signature() for s in result.specs]
        assert len(sigs) == len(set(sigs))

    def test_duplicates_counted(self, noisy_ghz3):
        result = ProbabilisticPTS(nsamples=500, nshots=1).sample(noisy_ghz3, make_rng(2))
        assert result.attempted_samples == 500
        assert result.duplicates_rejected + result.num_trajectories == 500

    def test_ideal_trajectory_included_by_default(self, noisy_ghz3):
        result = ProbabilisticPTS(nsamples=300, nshots=1).sample(noisy_ghz3, make_rng(3))
        assert any(s.record.num_errors() == 0 for s in result.specs)

    def test_exclude_ideal(self, noisy_ghz3):
        result = ProbabilisticPTS(nsamples=300, nshots=1, include_ideal=False).sample(
            noisy_ghz3, make_rng(4)
        )
        assert all(s.record.num_errors() > 0 for s in result.specs)

    def test_error_rate_statistics(self, noisy_ghz3):
        """Sampled single-error frequency tracks the Bernoulli expectation."""
        result = ProbabilisticPTS(nsamples=4000, nshots=1).sample(noisy_ghz3, make_rng(5))
        # Each of 12 candidates fires independently w.p. 0.05/3; the chance a
        # given attempt yields exactly zero errors is (1-p)^12 ~ 0.82.
        zero = sum(1 for s in result.specs if s.record.num_errors() == 0)
        assert zero == 1  # deduplicated to a single ideal spec

    def test_filter_restricts_candidates(self, mixed_noise_circuit):
        result = ProbabilisticPTS(
            nsamples=400, nshots=1, include_ideal=False,
            candidate_filter=by_qubits({3}),
        ).sample(mixed_noise_circuit, make_rng(6))
        for spec in result.specs:
            for event in spec.record.events:
                assert set(event.qubits) <= {3}

    def test_coverage_bounded_by_one(self, noisy_ghz3):
        result = ProbabilisticPTS(nsamples=2000, nshots=1).sample(noisy_ghz3, make_rng(7))
        assert 0 < result.coverage() <= 1.0 + 1e-9

    def test_invalid_params(self):
        with pytest.raises(SamplingError):
            ProbabilisticPTS(nsamples=-1, nshots=1)
        with pytest.raises(SamplingError):
            ProbabilisticPTS(nsamples=1, nshots=0)


class TestApportionment:
    def test_sums_to_total(self):
        shots = apportion_shots(np.array([0.5, 0.3, 0.2]), 1000)
        assert shots.sum() == 1000

    def test_proportionality(self):
        shots = apportion_shots(np.array([0.75, 0.25]), 100)
        assert shots.tolist() == [75, 25]

    def test_largest_remainder(self):
        shots = apportion_shots(np.array([1.0, 1.0, 1.0]), 100)
        assert shots.sum() == 100
        assert sorted(shots.tolist()) == [33, 33, 34]

    def test_zero_probability_gets_zero(self):
        shots = apportion_shots(np.array([1.0, 0.0]), 10)
        assert shots.tolist() == [10, 0]

    def test_rejects_negative(self):
        with pytest.raises(SamplingError):
            apportion_shots(np.array([-0.1, 1.1]), 10)

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_total_conserved_property(self, total):
        rng = np.random.default_rng(total)
        probs = rng.random(7)
        assert apportion_shots(probs, total).sum() == total


class TestProportionalPTS:
    def test_total_shot_budget_respected(self, noisy_ghz3):
        result = ProportionalPTS(total_shots=10_000, nsamples=500).sample(
            noisy_ghz3, make_rng(8)
        )
        assert result.total_shots == 10_000

    def test_shots_track_probability(self, noisy_ghz3):
        result = ProportionalPTS(total_shots=100_000, nsamples=500).sample(
            noisy_ghz3, make_rng(9)
        )
        specs = result.sorted_by_probability()
        # The ideal (highest-probability) trajectory gets the most shots.
        assert specs[0].num_shots == max(s.num_shots for s in specs)
        assert specs[0].record.num_errors() == 0

    def test_multinomial_resampling_mode(self, noisy_ghz3):
        result = ProportionalPTS(total_shots=5000, nsamples=300, resample=True).sample(
            noisy_ghz3, make_rng(10)
        )
        assert result.total_shots == 5000


class TestBandPTS:
    def test_band_excludes_outside(self, noisy_ghz3):
        # Single-error trajectories have p ~ 0.0143; the ideal has ~0.815.
        result = ProbabilityBandPTS(1e-3, 0.1, nsamples=2000, nshots=10).sample(
            noisy_ghz3, make_rng(11)
        )
        assert result.num_trajectories > 0
        for spec in result.specs:
            assert 1e-3 <= spec.probability <= 0.1
        assert all(s.record.num_errors() >= 1 for s in result.specs)

    def test_invalid_band(self):
        with pytest.raises(SamplingError):
            ProbabilityBandPTS(0.5, 0.1)

    def test_renormalize_shots(self, noisy_ghz3):
        base_total = ProbabilisticPTS(nsamples=2000, nshots=10).sample(
            noisy_ghz3, make_rng(12)
        ).total_shots
        result = ProbabilityBandPTS(
            1e-3, 0.1, nsamples=2000, nshots=10, renormalize_shots=True
        ).sample(noisy_ghz3, make_rng(12))
        assert result.total_shots >= base_total // 2


class TestExhaustive:
    def test_enumerates_all_above_cutoff(self, noisy_ghz3):
        # p_ideal ~ 0.8145; single errors ~ 0.0143 each (12 of them);
        # double errors ~ 2.5e-4.
        result = ExhaustivePTS(cutoff=1e-3, nshots=1).sample(noisy_ghz3, make_rng(0))
        assert result.num_trajectories == 1 + 12

    def test_includes_doubles_at_lower_cutoff(self, noisy_ghz3):
        result = ExhaustivePTS(cutoff=1e-4, nshots=1).sample(noisy_ghz3, make_rng(0))
        # doubles: C(4,2) site pairs x 9 branch combos = 54, plus 13.
        assert result.num_trajectories == 13 + 54

    def test_sorted_by_probability(self, noisy_ghz3):
        result = ExhaustivePTS(cutoff=1e-4, nshots=1).sample(noisy_ghz3, make_rng(0))
        probs = [s.probability for s in result.specs]
        assert probs == sorted(probs, reverse=True)

    def test_coverage_is_certified(self, noisy_ghz3):
        result = ExhaustivePTS(cutoff=1e-4, nshots=1).sample(noisy_ghz3, make_rng(0))
        # Everything except triple+ errors: coverage > 0.999.
        assert result.coverage() > 0.999

    def test_max_errors_cap(self, noisy_ghz3):
        result = ExhaustivePTS(cutoff=1e-9, nshots=1, max_errors=1).sample(
            noisy_ghz3, make_rng(0)
        )
        assert max(s.record.num_errors() for s in result.specs) == 1

    def test_proportional_shot_mode(self, noisy_ghz3):
        result = ExhaustivePTS(cutoff=1e-3, nshots=None, total_shots=1000).sample(
            noisy_ghz3, make_rng(0)
        )
        assert result.total_shots == 1000

    def test_zero_cutoff_rejected(self):
        with pytest.raises(SamplingError):
            ExhaustivePTS(cutoff=0.0)


class TestTopK:
    def test_returns_k_most_likely(self, noisy_ghz3):
        result = TopKPTS(k=5, nshots=1).sample(noisy_ghz3, make_rng(0))
        assert result.num_trajectories == 5
        probs = [s.probability for s in result.specs]
        assert probs == sorted(probs, reverse=True)
        assert result.specs[0].record.num_errors() == 0

    def test_agrees_with_exhaustive(self, noisy_ghz3):
        top = TopKPTS(k=13, nshots=1).sample(noisy_ghz3, make_rng(0))
        exh = ExhaustivePTS(cutoff=1e-3, nshots=1).sample(noisy_ghz3, make_rng(0))
        top_sigs = {s.record.signature() for s in top.specs}
        exh_sigs = {s.record.signature() for s in exh.specs}
        assert top_sigs == exh_sigs

    def test_pruning_visits_fewer_nodes_than_full_tree(self, noisy_ghz3):
        sampler = TopKPTS(k=3, nshots=1)
        sampler.sample(noisy_ghz3, make_rng(0))
        # Full tree = prod(1 + 3 branches)^4 sites = 4^4 = 256 leaves plus
        # internals; pruning should visit far fewer nodes.
        assert sampler.nodes_visited < 200
